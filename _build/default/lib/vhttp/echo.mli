(** The §4.2 echo server study (Figure 4).

    A protected-mode virtine whose handler reaches C code, [recv]s an
    HTTP request through a hypercall, and [send]s it straight back. The
    guest samples rdtsc at three milestones — main entry, recv return,
    send complete — and deposits them in the argument page where the
    client can read them after the exit. *)

val source : string
(** The handler, in the virtine C dialect (compiled for protected mode —
    "this example does not actually require 64-bit mode, so we omit
    paging"). *)

val compile : unit -> Vcc.Compile.compiled

type milestones = {
  entry : int64;      (** cycles from KVM_RUN to the C entry point *)
  recv_done : int64;  (** ... to the return from recv() *)
  send_done : int64;  (** ... to the completed send() *)
}

val run_once :
  Wasp.Runtime.t -> Vcc.Compile.compiled -> payload:string -> milestones * Wasp.Runtime.result
(** Run one echo round trip: writes [payload] into the connection, runs
    the handler as a virtine, checks the echo, and extracts the
    milestone timestamps (relative to invocation start). *)
