type request = {
  meth : string;
  path : string;
  version : string;
  headers : (string * string) list;
  body : string;
}

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

let reason_of_status = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 403 -> "Forbidden"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let split_head_body s =
  let rec find i =
    if i + 3 >= String.length s then None
    else if String.sub s i 4 = "\r\n\r\n" then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i -> (String.sub s 0 i, String.sub s (i + 4) (String.length s - i - 4))
  | None -> (s, "")

let parse_headers lines =
  let parse_one line =
    match String.index_opt line ':' with
    | Some i ->
        let key = String.trim (String.sub line 0 i) in
        let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
        if key = "" then Error (Printf.sprintf "empty header name in %S" line)
        else Ok (key, value)
    | None -> Error (Printf.sprintf "malformed header %S" line)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | "" :: rest -> go acc rest
    | line :: rest -> (
        match parse_one line with Ok h -> go (h :: acc) rest | Error e -> Error e)
  in
  go [] lines

let header_value headers name =
  List.find_map
    (fun (k, v) -> if String.lowercase_ascii k = String.lowercase_ascii name then Some v else None)
    headers

let split_crlf s = String.split_on_char '\n' s |> List.map (fun l ->
    if String.length l > 0 && l.[String.length l - 1] = '\r' then String.sub l 0 (String.length l - 1) else l)

let parse_request s =
  let head, body = split_head_body s in
  match split_crlf head with
  | [] -> Error "empty request"
  | request_line :: header_lines -> (
      match String.split_on_char ' ' request_line with
      | [ meth; path; version ] ->
          if meth = "" || path = "" then Error "malformed request line"
          else begin
            match parse_headers header_lines with
            | Error e -> Error e
            | Ok headers ->
                let body =
                  match header_value headers "content-length" with
                  | Some len -> (
                      match int_of_string_opt len with
                      | Some n when n >= 0 && n <= String.length body -> String.sub body 0 n
                      | Some _ | None -> body)
                  | None -> body
                in
                Ok { meth; path; version; headers; body }
          end
      | _ -> Error (Printf.sprintf "malformed request line %S" request_line))

let request_to_string r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s %s %s\r\n" r.meth r.path r.version);
  List.iter (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v)) r.headers;
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf r.body;
  Buffer.contents buf

let make_request ?(headers = []) ?(body = "") meth path =
  let headers =
    if body <> "" then headers @ [ ("Content-Length", string_of_int (String.length body)) ]
    else headers
  in
  { meth; path; version = "HTTP/1.0"; headers; body }

let parse_response s =
  let head, body = split_head_body s in
  match split_crlf head with
  | [] -> Error "empty response"
  | status_line :: header_lines -> (
      match String.split_on_char ' ' status_line with
      | _version :: code :: reason_words -> (
          match int_of_string_opt code with
          | Some status -> (
              match parse_headers header_lines with
              | Error e -> Error e
              | Ok headers ->
                  Ok
                    {
                      status;
                      reason = String.concat " " reason_words;
                      resp_headers = headers;
                      resp_body = body;
                    })
          | None -> Error (Printf.sprintf "bad status code %S" code))
      | _ -> Error "malformed status line")

let response_to_string r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "HTTP/1.0 %d %s\r\n" r.status r.reason);
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    r.resp_headers;
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf r.resp_body;
  Buffer.contents buf

let make_response ?(headers = []) ~status body =
  {
    status;
    reason = reason_of_status status;
    resp_headers = headers @ [ ("Content-Length", string_of_int (String.length body)) ];
    resp_body = body;
  }
