lib/vhttp/http.mli:
