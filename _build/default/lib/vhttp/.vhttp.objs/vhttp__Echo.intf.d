lib/vhttp/echo.mli: Vcc Wasp
