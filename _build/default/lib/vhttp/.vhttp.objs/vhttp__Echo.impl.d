lib/vhttp/echo.ml: Bytes Cycles Int64 Printf String Vcc Vm Wasp
