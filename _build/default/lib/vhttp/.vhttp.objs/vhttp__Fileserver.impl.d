lib/vhttp/fileserver.ml: Bytes Char Cycles Http Printf String Vcc Wasp
