lib/vhttp/http.ml: Buffer List Printf String
