lib/vhttp/fileserver.mli: Cycles Vcc Wasp
