let elapsed sys f =
  let clock = Kvmsim.Kvm.clock sys in
  let start = Cycles.Clock.now clock in
  f ();
  Cycles.Clock.elapsed_since clock start

let charge sys ~pct cost =
  let clock = Kvmsim.Kvm.clock sys and rng = Kvmsim.Kvm.rng sys in
  Cycles.Clock.advance_int clock (Cycles.Costs.jitter rng ~pct cost)

let function_call sys = elapsed sys (fun () -> charge sys ~pct:0.10 Cycles.Costs.function_call)

let pthread_create_join sys =
  elapsed sys (fun () -> charge sys ~pct:0.12 Cycles.Costs.pthread_spawn_join)

let process_spawn sys = elapsed sys (fun () -> charge sys ~pct:0.15 Cycles.Costs.process_spawn)

let hlt_image = Encoding.encode_program [ Instr.Hlt ]

let kvm_cold sys =
  elapsed sys (fun () ->
      let vm = Kvmsim.Kvm.create_vm sys in
      let mem = Kvmsim.Kvm.set_user_memory_region vm ~size:(64 * 1024) in
      let vcpu = Kvmsim.Kvm.create_vcpu vm ~mode:Vm.Modes.Real in
      Vm.Memory.write_bytes mem ~off:0 hlt_image;
      match Kvmsim.Kvm.run vcpu with
      | Kvmsim.Kvm.Hlt -> ()
      | _ -> failwith "kvm_cold: expected hlt")

module Vmrun_floor = struct
  type t = { vcpu : Kvmsim.Kvm.vcpu; sys : Kvmsim.Kvm.system }

  let prepare sys =
    let vm = Kvmsim.Kvm.create_vm sys in
    let mem = Kvmsim.Kvm.set_user_memory_region vm ~size:4096 in
    let vcpu = Kvmsim.Kvm.create_vcpu vm ~mode:Vm.Modes.Real in
    Vm.Memory.write_bytes mem ~off:0 hlt_image;
    { vcpu; sys }

  let measure t =
    elapsed t.sys (fun () ->
        Vm.Cpu.set_pc (Kvmsim.Kvm.vcpu_cpu t.vcpu) 0;
        match Kvmsim.Kvm.run t.vcpu with
        | Kvmsim.Kvm.Hlt -> ()
        | _ -> failwith "vmrun: expected hlt")
end

module Sgx = struct
  let create sys ~enclave_kb =
    elapsed sys (fun () ->
        charge sys ~pct:0.08 Cycles.Costs.sgx_ecreate;
        let pages = (enclave_kb + 3) / 4 in
        charge sys ~pct:0.05 (pages * Cycles.Costs.sgx_eadd_page);
        charge sys ~pct:0.08 Cycles.Costs.sgx_einit)

  let ecall sys = elapsed sys (fun () -> charge sys ~pct:0.10 Cycles.Costs.sgx_ecall)
end
