(** Execution-context creation baselines (Figures 2 and 8).

    Each measurement performs the real sequence of charged operations for
    one kind of execution context and returns the elapsed virtual cycles:

    - [function_call]: a null native call and return.
    - [pthread_create_join]: thread spawn + join.
    - [process_spawn]: fork + exec + exit + wait (for scale in Fig. 8).
    - [kvm_cold]: KVM_CREATE_VM + memory region + vCPU + KVM_RUN of an
      image that immediately executes hlt — Figure 2's "KVM".
    - [Vmrun_floor]: the bare KVM_RUN ioctl on an already-constructed VM —
      the hardware limit everything is compared against.
    - [Sgx]: ECREATE + per-page EADD/EEXTEND + EINIT, and ECALL for
      re-entry (Figure 8 bottom). *)

val function_call : Kvmsim.Kvm.system -> int64
val pthread_create_join : Kvmsim.Kvm.system -> int64
val process_spawn : Kvmsim.Kvm.system -> int64

val kvm_cold : Kvmsim.Kvm.system -> int64
(** Builds a fresh VM each call; the dominant cost is the in-kernel
    state allocation. *)

module Vmrun_floor : sig
  type t

  val prepare : Kvmsim.Kvm.system -> t
  (** Construct the VM and load the hlt image once. *)

  val measure : t -> int64
  (** One KVM_RUN entry/exit round trip. *)
end

module Sgx : sig
  val create : Kvmsim.Kvm.system -> enclave_kb:int -> int64
  (** ECREATE + EADD/EEXTEND per 4 KB page + EINIT. *)

  val ecall : Kvmsim.Kvm.system -> int64
end
