lib/baselines/contexts.ml: Cycles Encoding Instr Kvmsim Vm
