lib/baselines/contexts.mli: Kvmsim
