(** The tree-walking evaluator.

    Every evaluated node charges {!cost_per_node} cycles through the
    interpreter's charge hook, so the same engine runs with identical
    semantics on the host (baseline) and inside a virtine (guest-charged)
    — only where the cycles land differs. A step budget bounds hostile
    scripts (each top-level entry resets it). *)

type interp

val cost_per_node : int

val create : ?charge:(int -> unit) -> ?max_steps:int -> unit -> interp
(** [max_steps] defaults to 50M per entry. *)

val reset_steps : interp -> unit
(** The budget bounds a single top-level entry, not the engine lifetime;
    {!Engine.eval} and {!Engine.call} reset it. *)

exception Return_exc of Jsvalue.t
exception Break_exc
exception Continue_exc
exception Throw_exc of Jsvalue.t
(** A guest [throw]; caught by guest [try] or surfaced by the engine. *)

val eval_expr : interp -> Jsvalue.env -> Jsast.expr -> Jsvalue.t
(** @raise Jsvalue.Js_error on runtime errors. *)

val exec_stmt : interp -> Jsvalue.env -> Jsast.stmt -> unit
val exec_stmts : interp -> Jsvalue.env -> Jsast.stmt list -> unit

val exec_program : interp -> Jsvalue.env -> Jsast.program -> unit
(** Hoists function declarations first, as JS does. *)

val call : interp -> Jsvalue.t -> Jsvalue.t list -> Jsvalue.t
(** Apply a [Fun] or [Native] value.
    @raise Jsvalue.Js_error if the value is not callable. *)
