open Jsvalue

type t = {
  charge_cell : (int -> unit) ref;
  globals : env;
  interp : Jsinterp.interp;
  console : Buffer.t;
}

let charge_of t c = !(t.charge_cell) c

(* Calibrated so the baseline in Figure 14 lands near the paper's 419 us
   total: ~150 us alloc, ~12 us bindings, ~137 us parse+exec of the
   base64 workload, ~100 us teardown (cycles at 2.69 GHz). *)
let context_alloc_cycles = 400_000
let binding_cycles = 32_000
let teardown_cycles = 270_000
let parse_cycles_per_token = 45
let eval_cycles_per_node = Jsinterp.cost_per_node

let num_method name f = Native (name, fun args ->
    match args with
    | v :: _ -> Num (f (to_number v))
    | [] -> Num Float.nan)

let install_builtins t =
  let math = Hashtbl.create 8 in
  Hashtbl.replace math "floor" (num_method "floor" Float.floor);
  Hashtbl.replace math "ceil" (num_method "ceil" Float.ceil);
  Hashtbl.replace math "abs" (num_method "abs" Float.abs);
  Hashtbl.replace math "sqrt" (num_method "sqrt" Float.sqrt);
  Hashtbl.replace math "min"
    (Native ("min", fun args -> Num (List.fold_left (fun acc v -> min acc (to_number v)) Float.infinity args)));
  Hashtbl.replace math "max"
    (Native ("max", fun args -> Num (List.fold_left (fun acc v -> max acc (to_number v)) Float.neg_infinity args)));
  Hashtbl.replace math "pow"
    (Native ("pow", fun args ->
         match args with
         | a :: b :: _ -> Num (Float.pow (to_number a) (to_number b))
         | _ -> Num Float.nan));
  Hashtbl.replace math "PI" (Num Float.pi);
  env_define t.globals "Math" (Obj math);
  let string_obj = Hashtbl.create 4 in
  Hashtbl.replace string_obj "fromCharCode"
    (Native ("fromCharCode", fun args ->
         Str (String.concat ""
                (List.map (fun v -> String.make 1 (Char.chr (int_of_float (to_number v) land 0xFF))) args))));
  env_define t.globals "String" (Obj string_obj);
  env_define t.globals "parseInt"
    (Native ("parseInt", fun args ->
         match args with
         | v :: _ -> (
             let s = String.trim (to_string v) in
             (* parse the longest valid integer prefix *)
             let n = String.length s in
             let stop = ref 0 in
             let start = if n > 0 && (s.[0] = '-' || s.[0] = '+') then 1 else 0 in
             stop := start;
             while !stop < n && s.[!stop] >= '0' && s.[!stop] <= '9' do
               incr stop
             done;
             if !stop = start then Num Float.nan
             else
               match int_of_string_opt (String.sub s 0 !stop) with
               | Some i -> Num (float_of_int i)
               | None -> Num Float.nan)
         | [] -> Num Float.nan));
    let json = Hashtbl.create 2 in
  Hashtbl.replace json "stringify"
    (Native ("stringify", fun args ->
         match args with v :: _ -> Str (Json.stringify v) | [] -> Str "null"));
  Hashtbl.replace json "parse"
    (Native ("parse", fun args ->
         match args with
         | v :: _ -> Json.parse (to_string v)
         | [] -> raise (Js_error "JSON.parse: missing argument")));
  env_define t.globals "JSON" (Obj json);
  let print_fn =
    Native ("print", fun args ->
        Buffer.add_string t.console (String.concat " " (List.map to_string args));
        Buffer.add_char t.console '\n';
        Undefined)
  in
  env_define t.globals "print" print_fn;
  env_define t.globals "console_log" print_fn

let create ?(charge = fun _ -> ()) () =
  let cell = ref charge in
  let t =
    {
      charge_cell = cell;
      globals = env_create None;
      interp = Jsinterp.create ~charge:(fun c -> !cell c) ~max_steps:5_000_000 ();
      console = Buffer.create 64;
    }
  in
  charge context_alloc_cycles;
  install_builtins t;
  charge binding_cycles;
  t

let register t name f = env_define t.globals name (Native (name, f))

let eval t src =
  Jsinterp.reset_steps t.interp;
  match Jslex.tokenize src with
  | exception Jslex.Error { line; msg } -> Error (Printf.sprintf "SyntaxError (line %d): %s" line msg)
  | toks -> (
      charge_of t (List.length toks * parse_cycles_per_token);
      match Jsparse.parse src with
      | exception Jsparse.Error { line; msg } ->
          Error (Printf.sprintf "SyntaxError (line %d): %s" line msg)
      | prog -> (
          (* value of the last expression statement, REPL-style *)
          let result = ref Undefined in
          let run () =
            List.iter
              (fun s ->
                match s with
                | Jsast.Sfundecl (name, params, body) ->
                    env_define t.globals name
                      (Fun { params; body; env = t.globals; fname = name })
                | _ -> ())
              prog;
            List.iter
              (fun s ->
                match s with
                | Jsast.Sfundecl _ -> ()
                | Jsast.Sexpr e -> result := Jsinterp.eval_expr t.interp t.globals e
                | s -> Jsinterp.exec_stmt t.interp t.globals s)
              prog
          in
          match run () with
          | () -> Ok !result
          | exception Js_error msg -> Error msg
          | exception Jsinterp.Throw_exc v -> Error ("uncaught: " ^ to_string v)
          | exception Jsinterp.Return_exc _ -> Error "return outside function"))

let call t name args =
  Jsinterp.reset_steps t.interp;
  match env_lookup t.globals name with
  | None -> Error (Printf.sprintf "ReferenceError: %s is not defined" name)
  | Some fv -> (
      match Jsinterp.call t.interp !fv args with
      | v -> Ok v
      | exception Js_error msg -> Error msg
      | exception Jsinterp.Throw_exc v -> Error ("uncaught: " ^ to_string v))

let destroy t = charge_of t teardown_cycles

let console_output t = Buffer.contents t.console

let set_charge t charge = t.charge_cell := charge
