(* Tree-walking evaluator with a pluggable cycle-charging hook: every
   evaluated node charges [cost_per_node] so the same engine runs with
   identical semantics natively and in virtine context, differing only in
   where the cycles are charged. *)

open Jsvalue

exception Return_exc of t
exception Break_exc
exception Continue_exc
exception Throw_exc of t

type interp = { charge : int -> unit; mutable steps : int; max_steps : int }

let cost_per_node = 22

let create ?(charge = fun _ -> ()) ?(max_steps = 50_000_000) () =
  { charge; steps = 0; max_steps }

(* the budget bounds a single top-level entry, not the engine lifetime *)
let reset_steps it = it.steps <- 0

let tick it =
  it.steps <- it.steps + 1;
  if it.steps > it.max_steps then raise (Js_error "script step budget exceeded");
  it.charge cost_per_node

let js_fail fmt = Printf.ksprintf (fun s -> raise (Js_error s)) fmt

(* builtin methods dispatched on the receiver kind *)
let string_method it recv name args =
  let arg n = match List.nth_opt args n with Some v -> v | None -> Undefined in
  let num n = int_of_float (to_number (arg n)) in
  match name with
  | "charCodeAt" ->
      let i = num 0 in
      if i < 0 || i >= String.length recv then Num Float.nan
      else Num (float_of_int (Char.code recv.[i]))
  | "charAt" ->
      let i = num 0 in
      if i < 0 || i >= String.length recv then Str "" else Str (String.make 1 recv.[i])
  | "indexOf" -> (
      let needle = to_string (arg 0) in
      let hay = recv in
      let nh = String.length hay and nn = String.length needle in
      let rec go i = if i + nn > nh then -1 else if String.sub hay i nn = needle then i else go (i + 1) in
      match go 0 with i -> Num (float_of_int i))
  | "substring" ->
      let a = max 0 (min (String.length recv) (num 0)) in
      let b =
        match List.nth_opt args 1 with
        | Some v -> max 0 (min (String.length recv) (int_of_float (to_number v)))
        | None -> String.length recv
      in
      let lo = min a b and hi = max a b in
      Str (String.sub recv lo (hi - lo))
  | "slice" ->
      let n = String.length recv in
      let norm i = if i < 0 then max 0 (n + i) else min n i in
      let a = norm (num 0) in
      let b = match List.nth_opt args 1 with Some v -> norm (int_of_float (to_number v)) | None -> n in
      if a >= b then Str "" else Str (String.sub recv a (b - a))
  | "toUpperCase" -> Str (String.uppercase_ascii recv)
  | "toLowerCase" -> Str (String.lowercase_ascii recv)
  | "split" ->
      let sep = to_string (arg 0) in
      if sep = "" then
        Arr (vec_of_list (List.init (String.length recv) (fun i -> Str (String.make 1 recv.[i]))))
      else begin
        let parts = ref [] and start = ref 0 in
        let nh = String.length recv and nn = String.length sep in
        let i = ref 0 in
        while !i + nn <= nh do
          if String.sub recv !i nn = sep then begin
            parts := String.sub recv !start (!i - !start) :: !parts;
            i := !i + nn;
            start := !i
          end
          else incr i
        done;
        parts := String.sub recv !start (nh - !start) :: !parts;
        ignore it;
        Arr (vec_of_list (List.rev_map (fun s -> Str s) !parts))
      end
  | _ -> js_fail "string has no method %s" name

let rec array_method it recv name args =
  match name with
  | "map" -> (
      match args with
      | f :: _ ->
          Arr (vec_of_list (List.map (fun x -> call it f [ x ]) (vec_to_list recv)))
      | [] -> js_fail "map expects a function")
  | "filter" -> (
      match args with
      | f :: _ ->
          Arr (vec_of_list (List.filter (fun x -> truthy (call it f [ x ])) (vec_to_list recv)))
      | [] -> js_fail "filter expects a function")
  | "forEach" -> (
      match args with
      | f :: _ ->
          List.iter (fun x -> ignore (call it f [ x ])) (vec_to_list recv);
          Undefined
      | [] -> js_fail "forEach expects a function")
  | "reduce" -> (
      match args with
      | f :: rest ->
          let items = vec_to_list recv in
          let init, items =
            match (rest, items) with
            | seed :: _, _ -> (seed, items)
            | [], x :: xs -> (x, xs)
            | [], [] -> js_fail "reduce of empty array with no initial value"
          in
          List.fold_left (fun acc x -> call it f [ acc; x ]) init items
      | [] -> js_fail "reduce expects a function")
  | "concat" -> (
      match args with
      | Arr other :: _ -> Arr (vec_of_list (vec_to_list recv @ vec_to_list other))
      | v :: _ -> Arr (vec_of_list (vec_to_list recv @ [ v ]))
      | [] -> Arr (vec_of_list (vec_to_list recv)))
  | "reverse" ->
      let items = List.rev (vec_to_list recv) in
      List.iteri (fun i x -> vec_set recv i x) items;
      Arr recv
  | "push" ->
      List.iter (vec_push recv) args;
      Num (float_of_int recv.len)
  | "pop" -> vec_pop recv
  | "join" ->
      let sep = match args with v :: _ -> to_string v | [] -> "," in
      Str (String.concat sep (List.map to_string (vec_to_list recv)))
  | "indexOf" ->
      let target = match args with v :: _ -> v | [] -> Undefined in
      let rec go i =
        if i >= recv.len then -1
        else if strict_equal (vec_get recv i) target then i
        else go (i + 1)
      in
      Num (float_of_int (go 0))
  | "slice" ->
      let n = recv.len in
      let norm v = let i = int_of_float (to_number v) in if i < 0 then max 0 (n + i) else min n i in
      let a = match args with v :: _ -> norm v | [] -> 0 in
      let b = match args with _ :: v :: _ -> norm v | _ -> n in
      Arr (vec_of_list (List.filteri (fun i _ -> i >= a && i < b) (vec_to_list recv)))
  | _ -> js_fail "array has no method %s" name

and eval_expr it env (e : Jsast.expr) : t =
  tick it;
  match e with
  | Jsast.Enum n -> Num n
  | Jsast.Estr s -> Str s
  | Jsast.Ebool b -> Bool b
  | Jsast.Enull -> Null
  | Jsast.Eundefined -> Undefined
  | Jsast.Eident name -> (
      match env_lookup env name with
      | Some r -> !r
      | None -> js_fail "ReferenceError: %s is not defined" name)
  | Jsast.Earray items -> Arr (vec_of_list (List.map (eval_expr it env) items))
  | Jsast.Eobject fields ->
      let tbl = Hashtbl.create 8 in
      List.iter (fun (k, v) -> Hashtbl.replace tbl k (eval_expr it env v)) fields;
      Obj tbl
  | Jsast.Efun (params, body) -> Fun { params; body; env; fname = "anonymous" }
  | Jsast.Ecall (f, args) ->
      let fv = eval_expr it env f in
      let argv = List.map (eval_expr it env) args in
      call it fv argv
  | Jsast.Emethod (recv, name, args) -> (
      let rv = eval_expr it env recv in
      let argv = List.map (eval_expr it env) args in
      match rv with
      | Str s -> string_method it s name argv
      | Arr v -> array_method it v name argv
      | Obj tbl -> (
          match Hashtbl.find_opt tbl name with
          | Some fv -> call it fv argv
          | None -> js_fail "object has no method %s" name)
      | other -> js_fail "%s has no method %s" (type_name other) name)
  | Jsast.Eprop (recv, name) -> (
      let rv = eval_expr it env recv in
      match (rv, name) with
      | Str s, "length" -> Num (float_of_int (String.length s))
      | Arr v, "length" -> Num (float_of_int v.len)
      | Obj tbl, _ -> (
          match Hashtbl.find_opt tbl name with Some v -> v | None -> Undefined)
      | _ -> js_fail "cannot read property %s of %s" name (type_name rv))
  | Jsast.Eindex (recv, idx) -> (
      let rv = eval_expr it env recv in
      let iv = eval_expr it env idx in
      match rv with
      | Arr v -> vec_get v (int_of_float (to_number iv))
      | Str s ->
          let i = int_of_float (to_number iv) in
          if i < 0 || i >= String.length s then Undefined else Str (String.make 1 s.[i])
      | Obj tbl -> (
          match Hashtbl.find_opt tbl (to_string iv) with Some v -> v | None -> Undefined)
      | _ -> js_fail "cannot index %s" (type_name rv))
  | Jsast.Eunop (op, a) -> (
      let v = eval_expr it env a in
      match op with
      | "-" -> Num (-.to_number v)
      | "+" -> Num (to_number v)
      | "!" -> Bool (not (truthy v))
      | "~" -> Num (Int32.to_float (Int32.lognot (to_int32 v)))
      | _ -> js_fail "unknown unary %s" op)
  | Jsast.Ebinop (op, a, b) -> eval_binop it env op a b
  | Jsast.Eassign (target, value) -> (
      let v = eval_expr it env value in
      (match target with
      | Jsast.Eident name -> (
          match env_lookup env name with
          | Some r -> r := v
          | None ->
              (* implicit global, as in sloppy-mode JS *)
              let rec top e = match e.parent with Some p -> top p | None -> e in
              env_define (top env) name v)
      | Jsast.Eindex (recv, idx) -> (
          let rv = eval_expr it env recv in
          let iv = eval_expr it env idx in
          match rv with
          | Arr vec -> vec_set vec (int_of_float (to_number iv)) v
          | Obj tbl -> Hashtbl.replace tbl (to_string iv) v
          | _ -> js_fail "cannot index-assign %s" (type_name rv))
      | Jsast.Eprop (recv, name) -> (
          let rv = eval_expr it env recv in
          match rv with
          | Obj tbl -> Hashtbl.replace tbl name v
          | _ -> js_fail "cannot set property %s of %s" name (type_name rv))
      | _ -> js_fail "invalid assignment target");
      v)
  | Jsast.Econd (c, a, b) ->
      if truthy (eval_expr it env c) then eval_expr it env a else eval_expr it env b
  | Jsast.Etypeof (Jsast.Eident name) -> (
      match env_lookup env name with
      | Some r -> Str (type_name !r)
      | None -> Str "undefined")
  | Jsast.Etypeof e -> Str (type_name (eval_expr it env e))

and eval_binop it env op a b =
  match op with
  | "&&" ->
      let va = eval_expr it env a in
      if truthy va then eval_expr it env b else va
  | "||" ->
      let va = eval_expr it env a in
      if truthy va then va else eval_expr it env b
  | _ -> (
      let va = eval_expr it env a in
      let vb = eval_expr it env b in
      match op with
      | "+" -> (
          match (va, vb) with
          | Str _, _ | _, Str _ -> Str (to_string va ^ to_string vb)
          | _ -> Num (to_number va +. to_number vb))
      | "-" -> Num (to_number va -. to_number vb)
      | "*" -> Num (to_number va *. to_number vb)
      | "/" -> Num (to_number va /. to_number vb)
      | "%" -> Num (Float.rem (to_number va) (to_number vb))
      | "<" -> compare_values va vb ( < ) ( < )
      | "<=" -> compare_values va vb ( <= ) ( <= )
      | ">" -> compare_values va vb ( > ) ( > )
      | ">=" -> compare_values va vb ( >= ) ( >= )
      | "==" -> Bool (loose_equal va vb)
      | "!=" -> Bool (not (loose_equal va vb))
      | "===" -> Bool (strict_equal va vb)
      | "!==" -> Bool (not (strict_equal va vb))
      | "&" -> Num (Int32.to_float (Int32.logand (to_int32 va) (to_int32 vb)))
      | "|" -> Num (Int32.to_float (Int32.logor (to_int32 va) (to_int32 vb)))
      | "^" -> Num (Int32.to_float (Int32.logxor (to_int32 va) (to_int32 vb)))
      | "<<" ->
          Num (Int32.to_float (Int32.shift_left (to_int32 va) (Int32.to_int (to_int32 vb) land 31)))
      | ">>" ->
          Num (Int32.to_float (Int32.shift_right (to_int32 va) (Int32.to_int (to_int32 vb) land 31)))
      | _ -> js_fail "unknown operator %s" op)

and compare_values a b numcmp strcmp =
  match (a, b) with
  | Str x, Str y -> Bool (strcmp x y)
  | _ -> Bool (numcmp (to_number a) (to_number b))

and call it fv argv =
  match fv with
  | Fun f ->
      let fenv = env_create (Some f.env) in
      let rec bind params args =
        match (params, args) with
        | [], _ -> ()
        | p :: ps, [] ->
            env_define fenv p Undefined;
            bind ps []
        | p :: ps, a :: rest ->
            env_define fenv p a;
            bind ps rest
      in
      bind f.params argv;
      (try
         exec_stmts it fenv f.body;
         Undefined
       with Return_exc v -> v)
  | Native (_, f) -> f argv
  | other -> js_fail "%s is not a function" (type_name other)

and exec_stmt it env (s : Jsast.stmt) : unit =
  tick it;
  match s with
  | Jsast.Sexpr e -> ignore (eval_expr it env e)
  | Jsast.Svar (name, init) ->
      let v = match init with Some e -> eval_expr it env e | None -> Undefined in
      env_define env name v
  | Jsast.Sif (c, t, f) ->
      if truthy (eval_expr it env c) then exec_stmts it (env_create (Some env)) t
      else exec_stmts it (env_create (Some env)) f
  | Jsast.Swhile (c, body) -> (
      try
        while truthy (eval_expr it env c) do
          try exec_stmts it (env_create (Some env)) body with Continue_exc -> ()
        done
      with Break_exc -> ())
  | Jsast.Sfor (init, cond, step, body) -> (
      let fenv = env_create (Some env) in
      (match init with Some s -> exec_stmt it fenv s | None -> ());
      let check () = match cond with Some c -> truthy (eval_expr it fenv c) | None -> true in
      try
        while check () do
          (try exec_stmts it (env_create (Some fenv)) body with Continue_exc -> ());
          match step with Some e -> ignore (eval_expr it fenv e) | None -> ()
        done
      with Break_exc -> ())
  | Jsast.Sreturn e ->
      raise (Return_exc (match e with Some e -> eval_expr it env e | None -> Undefined))
  | Jsast.Sbreak -> raise Break_exc
  | Jsast.Scontinue -> raise Continue_exc
  | Jsast.Sfundecl (name, params, body) ->
      env_define env name (Fun { params; body; env; fname = name })
  | Jsast.Sblock body -> exec_stmts it (env_create (Some env)) body
  | Jsast.Sthrow e -> raise (Throw_exc (eval_expr it env e))
  | Jsast.Stry (body, catch, fin) ->
      let run_finally () = exec_stmts it (env_create (Some env)) fin in
      (try
         (try exec_stmts it (env_create (Some env)) body with
         | Throw_exc v -> (
             match catch with
             | Some (binding, cbody) ->
                 let cenv = env_create (Some env) in
                 env_define cenv binding v;
                 exec_stmts it cenv cbody
             | None -> raise (Throw_exc v))
         | Js_error msg -> (
             (* runtime errors are catchable, surfaced as strings *)
             match catch with
             | Some (binding, cbody) ->
                 let cenv = env_create (Some env) in
                 env_define cenv binding (Str msg);
                 exec_stmts it cenv cbody
             | None -> raise (Js_error msg)))
       with e ->
         run_finally ();
         raise e);
      run_finally ()

and exec_stmts it env stmts = List.iter (exec_stmt it env) stmts

(* hoist function declarations, as JS does *)
let exec_program it env stmts =
  List.iter
    (fun s ->
      match s with
      | Jsast.Sfundecl (name, params, body) ->
          env_define env name (Fun { params; body; env; fname = name })
      | _ -> ())
    stmts;
  List.iter
    (fun s -> match s with Jsast.Sfundecl _ -> () | _ -> exec_stmt it env s)
    stmts
