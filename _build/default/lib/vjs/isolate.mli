(** A JavaScript function in a virtine: the reusable embedding behind both
    the Vespid serverless platform (§7.1) and database UDFs.

    Each isolate owns a snapshot key: the first invocation boots a shell,
    builds the engine inside guest memory, loads the source and snapshots;
    later invocations restore and run. The policy admits only [snapshot],
    [get_data] and [return_data] — the §6.5 minimal attack surface. *)

type t

val create : Wasp.Runtime.t -> key:string -> source:string -> entry:string -> t
(** Define an isolate. Nothing runs until the first invocation. *)

val invoke : t -> input:bytes -> (string, string) result * int64
(** Call [entry] with the input as an array of byte values; the result is
    stringified. Returns (result, invocation cycles). *)

val call_json : t -> Jsvalue.t list -> (Jsvalue.t, string) result * int64
(** Call [entry] with structured arguments: they cross into the virtine as
    JSON through [get_data], and the result returns as JSON through
    [return_data] — the data never bypasses the checked channel. Functions
    and undefined map to null, as JSON does. *)

val key : t -> string
val source : t -> string
val entry : t -> string
