(** JSON over the vjs value domain.

    Backs the engine's [JSON] global and the host side of
    {!Isolate.call_json}, where structured values cross the virtine
    boundary through the checked data channel. *)

val stringify : Jsvalue.t -> string
(** Functions and [undefined] serialize as [null]; object keys are
    emitted in sorted order (deterministic output). *)

val parse : string -> Jsvalue.t
(** @raise Jsvalue.Js_error on malformed input. *)
