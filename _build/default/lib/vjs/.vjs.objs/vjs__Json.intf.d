lib/vjs/json.mli: Jsvalue
