lib/vjs/jslex.ml: Buffer Int64 List Printf String
