lib/vjs/workload.mli: Cycles Wasp
