lib/vjs/workload.ml: Bytes Char Cycles Engine Int64 Jsvalue List String Vcrypto Vm Wasp
