lib/vjs/engine.ml: Buffer Char Float Hashtbl Jsast Jsinterp Jslex Json Jsparse Jsvalue List Printf String
