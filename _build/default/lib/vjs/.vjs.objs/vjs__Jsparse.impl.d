lib/vjs/jsparse.ml: Array Jsast Jslex List Printf String
