lib/vjs/isolate.mli: Jsvalue Wasp
