lib/vjs/jsast.ml: List
