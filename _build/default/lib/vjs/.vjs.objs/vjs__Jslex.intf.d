lib/vjs/jslex.mli:
