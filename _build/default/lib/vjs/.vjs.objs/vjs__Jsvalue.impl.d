lib/vjs/jsvalue.ml: Array Float Hashtbl Int32 Jsast List Printf String
