lib/vjs/json.ml: Buffer Char Hashtbl Jsvalue List Printf String
