lib/vjs/jsast.mli:
