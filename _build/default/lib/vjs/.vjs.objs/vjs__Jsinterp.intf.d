lib/vjs/jsinterp.mli: Jsast Jsvalue
