lib/vjs/jsparse.mli: Jsast
