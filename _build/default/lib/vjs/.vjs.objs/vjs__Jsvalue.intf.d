lib/vjs/jsvalue.mli: Hashtbl Jsast
