lib/vjs/jsinterp.ml: Char Float Hashtbl Int32 Jsast Jsvalue List Printf String
