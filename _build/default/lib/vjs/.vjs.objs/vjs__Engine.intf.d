lib/vjs/engine.mli: Jsvalue
