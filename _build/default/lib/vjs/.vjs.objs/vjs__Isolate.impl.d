lib/vjs/isolate.ml: Bytes Char Engine Int64 Json Jsvalue List String Vm Wasp
