exception Error of { line : int; msg : string }

type state = { toks : (Jslex.token * int) array; mutable cur : int }

let peek st = fst st.toks.(st.cur)
let line st = snd st.toks.(st.cur)
let advance st = if st.cur < Array.length st.toks - 1 then st.cur <- st.cur + 1

let fail st msg = raise (Error { line = line st; msg })

let expect_punct st p =
  match peek st with
  | Jslex.PUNCT q when q = p -> advance st
  | other -> fail st (Printf.sprintf "expected '%s', found %s" p (Jslex.token_name other))

let is_punct st p = match peek st with Jslex.PUNCT q -> q = p | _ -> false
let is_kw st k = match peek st with Jslex.KW q -> q = k | _ -> false

let eat_kw st k =
  if is_kw st k then advance st
  else fail st (Printf.sprintf "expected '%s', found %s" k (Jslex.token_name (peek st)))

let ident st =
  match peek st with
  | Jslex.IDENT name ->
      advance st;
      name
  | other -> fail st (Printf.sprintf "expected identifier, found %s" (Jslex.token_name other))

(* precedence for binary operators *)
let prec = function
  | "*" | "/" | "%" -> 11
  | "+" | "-" -> 10
  | "<<" | ">>" -> 9
  | "<" | "<=" | ">" | ">=" -> 8
  | "==" | "!=" | "===" | "!==" -> 7
  | "&" -> 6
  | "^" -> 5
  | "|" -> 4
  | "&&" -> 3
  | "||" -> 2
  | _ -> -1

let rec parse_expr st = parse_assign st

and parse_assign st =
  let lhs = parse_ternary st in
  match peek st with
  | Jslex.PUNCT "=" ->
      advance st;
      Jsast.Eassign (lhs, parse_assign st)
  | Jslex.PUNCT ("+=" | "-=" | "*=" | "/=" | "%=" as p) ->
      advance st;
      let op = String.sub p 0 1 in
      let rhs = parse_assign st in
      Jsast.Eassign (lhs, Jsast.Ebinop (op, lhs, rhs))
  | _ -> lhs

and parse_ternary st =
  let c = parse_binary st 1 in
  if is_punct st "?" then begin
    advance st;
    let a = parse_assign st in
    expect_punct st ":";
    let b = parse_assign st in
    Jsast.Econd (c, a, b)
  end
  else c

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let again = ref true in
  while !again do
    match peek st with
    | Jslex.PUNCT p when prec p >= min_prec ->
        advance st;
        let rhs = parse_binary st (prec p + 1) in
        lhs := Jsast.Ebinop (p, !lhs, rhs)
    | _ -> again := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | Jslex.PUNCT "-" ->
      advance st;
      Jsast.Eunop ("-", parse_unary st)
  | Jslex.PUNCT "+" ->
      advance st;
      Jsast.Eunop ("+", parse_unary st)
  | Jslex.PUNCT "!" ->
      advance st;
      Jsast.Eunop ("!", parse_unary st)
  | Jslex.PUNCT "~" ->
      advance st;
      Jsast.Eunop ("~", parse_unary st)
  | Jslex.PUNCT "++" ->
      advance st;
      let e = parse_unary st in
      Jsast.Eassign (e, Jsast.Ebinop ("+", e, Jsast.Enum 1.0))
  | Jslex.PUNCT "--" ->
      advance st;
      let e = parse_unary st in
      Jsast.Eassign (e, Jsast.Ebinop ("-", e, Jsast.Enum 1.0))
  | Jslex.KW "typeof" ->
      advance st;
      Jsast.Etypeof (parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let again = ref true in
  while !again do
    match peek st with
    | Jslex.PUNCT "." -> (
        advance st;
        let name = ident st in
        if is_punct st "(" then begin
          advance st;
          let args = parse_args st in
          e := Jsast.Emethod (!e, name, args)
        end
        else e := Jsast.Eprop (!e, name))
    | Jslex.PUNCT "[" ->
        advance st;
        let idx = parse_expr st in
        expect_punct st "]";
        e := Jsast.Eindex (!e, idx)
    | Jslex.PUNCT "(" ->
        advance st;
        let args = parse_args st in
        e := Jsast.Ecall (!e, args)
    | Jslex.PUNCT "++" ->
        advance st;
        (* x++ as ((x = x+1) - 1) *)
        e := Jsast.Ebinop ("-", Jsast.Eassign (!e, Jsast.Ebinop ("+", !e, Jsast.Enum 1.0)), Jsast.Enum 1.0)
    | Jslex.PUNCT "--" ->
        advance st;
        e := Jsast.Ebinop ("+", Jsast.Eassign (!e, Jsast.Ebinop ("-", !e, Jsast.Enum 1.0)), Jsast.Enum 1.0)
    | _ -> again := false
  done;
  !e

and parse_args st =
  let args = ref [] in
  if not (is_punct st ")") then begin
    args := [ parse_expr st ];
    while is_punct st "," do
      advance st;
      args := parse_expr st :: !args
    done
  end;
  expect_punct st ")";
  List.rev !args

and parse_primary st =
  match peek st with
  | Jslex.NUM v ->
      advance st;
      Jsast.Enum v
  | Jslex.STR s ->
      advance st;
      Jsast.Estr s
  | Jslex.KW "true" ->
      advance st;
      Jsast.Ebool true
  | Jslex.KW "false" ->
      advance st;
      Jsast.Ebool false
  | Jslex.KW "null" ->
      advance st;
      Jsast.Enull
  | Jslex.KW "undefined" ->
      advance st;
      Jsast.Eundefined
  | Jslex.KW "new" ->
      (* tolerate "new X(...)" as a call *)
      advance st;
      parse_postfix st
  | Jslex.KW "function" ->
      advance st;
      (* anonymous or named function expression *)
      (match peek st with Jslex.IDENT _ -> ignore (ident st) | _ -> ());
      expect_punct st "(";
      let params = parse_params st in
      expect_punct st "{";
      let body = parse_block st in
      Jsast.Efun (params, body)
  | Jslex.IDENT name ->
      advance st;
      Jsast.Eident name
  | Jslex.PUNCT "(" ->
      advance st;
      let e = parse_expr st in
      expect_punct st ")";
      e
  | Jslex.PUNCT "[" ->
      advance st;
      let items = ref [] in
      if not (is_punct st "]") then begin
        items := [ parse_expr st ];
        while is_punct st "," do
          advance st;
          if not (is_punct st "]") then items := parse_expr st :: !items
        done
      end;
      expect_punct st "]";
      Jsast.Earray (List.rev !items)
  | Jslex.PUNCT "{" ->
      advance st;
      let fields = ref [] in
      if not (is_punct st "}") then begin
        let read_field () =
          let key =
            match peek st with
            | Jslex.IDENT k | Jslex.STR k ->
                advance st;
                k
            | other ->
                fail st (Printf.sprintf "expected property name, found %s" (Jslex.token_name other))
          in
          expect_punct st ":";
          (key, parse_expr st)
        in
        fields := [ read_field () ];
        while is_punct st "," do
          advance st;
          if not (is_punct st "}") then fields := read_field () :: !fields
        done
      end;
      expect_punct st "}";
      Jsast.Eobject (List.rev !fields)
  | other -> fail st (Printf.sprintf "expected expression, found %s" (Jslex.token_name other))

and parse_params st =
  let params = ref [] in
  if not (is_punct st ")") then begin
    params := [ ident st ];
    while is_punct st "," do
      advance st;
      params := ident st :: !params
    done
  end;
  expect_punct st ")";
  List.rev !params

and parse_block st =
  let stmts = ref [] in
  while not (is_punct st "}") do
    if peek st = Jslex.EOF then fail st "unexpected end of input";
    stmts := parse_stmt st :: !stmts
  done;
  advance st;
  List.rev !stmts

and parse_stmt st : Jsast.stmt =
  match peek st with
  | Jslex.PUNCT "{" ->
      advance st;
      Jsast.Sblock (parse_block st)
  | Jslex.PUNCT ";" ->
      advance st;
      Jsast.Sblock []
  | Jslex.KW ("var" | "let" | "const") ->
      advance st;
      let name = ident st in
      let init =
        if is_punct st "=" then begin
          advance st;
          Some (parse_expr st)
        end
        else None
      in
      semi st;
      Jsast.Svar (name, init)
  | Jslex.KW "function" ->
      advance st;
      let name = ident st in
      expect_punct st "(";
      let params = parse_params st in
      expect_punct st "{";
      let body = parse_block st in
      Jsast.Sfundecl (name, params, body)
  | Jslex.KW "if" ->
      advance st;
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      let t = parse_body st in
      let f =
        if is_kw st "else" then begin
          advance st;
          parse_body st
        end
        else []
      in
      Jsast.Sif (c, t, f)
  | Jslex.KW "while" ->
      advance st;
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      Jsast.Swhile (c, parse_body st)
  | Jslex.KW "for" ->
      advance st;
      expect_punct st "(";
      let init =
        if is_punct st ";" then None
        else if is_kw st "var" || is_kw st "let" || is_kw st "const" then begin
          advance st;
          let name = ident st in
          let e =
            if is_punct st "=" then begin
              advance st;
              Some (parse_expr st)
            end
            else None
          in
          Some (Jsast.Svar (name, e))
        end
        else Some (Jsast.Sexpr (parse_expr st))
      in
      expect_punct st ";";
      let cond = if is_punct st ";" then None else Some (parse_expr st) in
      expect_punct st ";";
      let step = if is_punct st ")" then None else Some (parse_expr st) in
      expect_punct st ")";
      Jsast.Sfor (init, cond, step, parse_body st)
  | Jslex.KW "throw" ->
      advance st;
      let e = parse_expr st in
      semi st;
      Jsast.Sthrow e
  | Jslex.KW "try" ->
      advance st;
      expect_punct st "{";
      let body = parse_block st in
      let catch =
        if is_kw st "catch" then begin
          advance st;
          let binding =
            if is_punct st "(" then begin
              advance st;
              let name = ident st in
              expect_punct st ")";
              name
            end
            else "__caught"
          in
          expect_punct st "{";
          Some (binding, parse_block st)
        end
        else None
      in
      let fin =
        if is_kw st "finally" then begin
          advance st;
          expect_punct st "{";
          parse_block st
        end
        else []
      in
      if catch = None && fin = [] then fail st "try requires catch or finally";
      Jsast.Stry (body, catch, fin)
  | Jslex.KW "return" ->
      advance st;
      let e = if is_punct st ";" || is_punct st "}" then None else Some (parse_expr st) in
      semi st;
      Jsast.Sreturn e
  | Jslex.KW "break" ->
      advance st;
      semi st;
      Jsast.Sbreak
  | Jslex.KW "continue" ->
      advance st;
      semi st;
      Jsast.Scontinue
  | _ ->
      let e = parse_expr st in
      semi st;
      Jsast.Sexpr e

and parse_body st =
  if is_punct st "{" then begin
    advance st;
    parse_block st
  end
  else [ parse_stmt st ]

(* semicolons are required except before '}' and EOF (mini-ASI) *)
and semi st =
  if is_punct st ";" then advance st
  else if is_punct st "}" || peek st = Jslex.EOF then ()
  else fail st (Printf.sprintf "expected ';', found %s" (Jslex.token_name (peek st)))

let parse src =
  let toks = Array.of_list (Jslex.tokenize src) in
  let st = { toks; cur = 0 } in
  let stmts = ref [] in
  while peek st <> Jslex.EOF do
    stmts := parse_stmt st :: !stmts
  done;
  List.rev !stmts
