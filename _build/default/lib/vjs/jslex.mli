(** Lexer for the vjs JavaScript subset. *)

type token =
  | NUM of float
  | STR of string
  | IDENT of string
  | KW of string
      (** var, let, function, return, if, else, while, for, true, false,
          null, undefined, break, continue, new, typeof *)
  | PUNCT of string
      (** operators and delimiters, longest-match: === !== == != <= >= &&
          || << >> += -= *= /= ++ -- + - * / % < > = ( ) { } [ ] ; , . ? :
          ! & | ^ ~ *)
  | EOF

val token_name : token -> string

exception Error of { line : int; msg : string }

val tokenize : string -> (token * int) list
(** Token plus line number; includes trailing EOF. *)
