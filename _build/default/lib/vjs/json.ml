(* JSON for the vjs value domain: used by the JSON global inside the
   engine and by the host side of Isolate.call_json (structured values
   crossing the virtine data channel). *)

open Jsvalue

let rec stringify_impl (v : Jsvalue.t) : string =
  match v with
  | Undefined -> "null"
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Num n -> number_to_string n
  | Str s ->
      let buf = Buffer.create (String.length s + 2) in
      Buffer.add_char buf '"';
      String.iter
        (fun c ->
          match c with
          | '"' -> Buffer.add_string buf "\\\""
          | '\\' -> Buffer.add_string buf "\\\\"
          | '\n' -> Buffer.add_string buf "\\n"
          | '\t' -> Buffer.add_string buf "\\t"
          | '\r' -> Buffer.add_string buf "\\r"
          | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
          | c -> Buffer.add_char buf c)
        s;
      Buffer.add_char buf '"';
      Buffer.contents buf
  | Arr v -> "[" ^ String.concat "," (List.map stringify_impl (vec_to_list v)) ^ "]"
  | Obj tbl ->
      let fields =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
        |> List.map (fun (k, v) -> stringify_impl (Str k) ^ ":" ^ stringify_impl v)
      in
      "{" ^ String.concat "," fields ^ "}"
  | Fun _ | Native _ -> "null"

let parse_impl (s : string) : Jsvalue.t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Js_error ("JSON.parse: " ^ msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\n' || s.[!pos] = '\t' || s.[!pos] = '\r') do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos else fail (Printf.sprintf "expected %c" c)
  in
  let rec value () : Jsvalue.t =
    skip_ws ();
    match peek () with
    | Some '{' ->
        incr pos;
        let tbl = Hashtbl.create 8 in
        skip_ws ();
        if peek () = Some '}' then incr pos
        else begin
          let rec fields () =
            skip_ws ();
            let key = match value () with Str k -> k | _ -> fail "object key" in
            skip_ws ();
            expect ':';
            let v = value () in
            Hashtbl.replace tbl key v;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                fields ()
            | Some '}' -> incr pos
            | _ -> fail "expected , or }"
          in
          fields ()
        end;
        Obj tbl
    | Some '[' ->
        incr pos;
        let items = ref [] in
        skip_ws ();
        if peek () = Some ']' then incr pos
        else begin
          let rec elems () =
            items := value () :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elems ()
            | Some ']' -> incr pos
            | _ -> fail "expected , or ]"
          in
          elems ()
        end;
        Arr (vec_of_list (List.rev !items))
    | Some '"' ->
        incr pos;
        let buf = Buffer.create 16 in
        let rec str () =
          match peek () with
          | Some '"' -> incr pos
          | Some '\\' ->
              incr pos;
              (match peek () with
              | Some 'n' -> Buffer.add_char buf '\n'
              | Some 't' -> Buffer.add_char buf '\t'
              | Some 'r' -> Buffer.add_char buf '\r'
              | Some '"' -> Buffer.add_char buf '"'
              | Some '\\' -> Buffer.add_char buf '\\'
              | Some '/' -> Buffer.add_char buf '/'
              | _ -> fail "bad escape");
              incr pos;
              str ()
          | Some c ->
              Buffer.add_char buf c;
              incr pos;
              str ()
          | None -> fail "unterminated string"
        in
        str ();
        Str (Buffer.contents buf)
    | Some c when c = '-' || (c >= '0' && c <= '9') ->
        let start = !pos in
        if c = '-' then incr pos;
        while
          match peek () with
          | Some c -> (c >= '0' && c <= '9') || c = '.' || c = 'e' || c = 'E' || c = '+' || c = '-'
          | None -> false
        do
          incr pos
        done;
        (match float_of_string_opt (String.sub s start (!pos - start)) with
        | Some f -> Num f
        | None -> fail "bad number")
    | Some 't' when !pos + 4 <= n && String.sub s !pos 4 = "true" ->
        pos := !pos + 4;
        Bool true
    | Some 'f' when !pos + 5 <= n && String.sub s !pos 5 = "false" ->
        pos := !pos + 5;
        Bool false
    | Some 'n' when !pos + 4 <= n && String.sub s !pos 4 = "null" ->
        pos := !pos + 4;
        Null
    | _ -> fail "unexpected input"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing characters";
  v


let stringify = stringify_impl
let parse = parse_impl
