(** Parser for the vjs JavaScript subset. *)

exception Error of { line : int; msg : string }

val parse : string -> Jsast.program
(** @raise Error (or {!Jslex.Error}) on malformed input. *)
