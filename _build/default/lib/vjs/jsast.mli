(** Abstract syntax for the vjs JavaScript subset.

    Covered: var/let/const, functions (declarations and expressions,
    closures), if/while/for, break/continue/return, throw/try/catch/
    finally, arrays, object literals, property and index access, method
    calls, the usual operators (strict and loose equality, bitwise with
    ToInt32), ternary and typeof. [this], prototypes and classes are out
    of scope — the paper's workloads do not need them. *)

type expr =
  | Enum of float
  | Estr of string
  | Ebool of bool
  | Enull
  | Eundefined
  | Eident of string
  | Earray of expr list
  | Eobject of (string * expr) list
  | Efun of string list * stmt list       (** function expression *)
  | Ecall of expr * expr list
  | Emethod of expr * string * expr list  (** receiver.name(args) *)
  | Eprop of expr * string
  | Eindex of expr * expr
  | Eunop of string * expr
  | Ebinop of string * expr * expr
  | Eassign of expr * expr
  | Econd of expr * expr * expr
  | Etypeof of expr

and stmt =
  | Sexpr of expr
  | Svar of string * expr option
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of stmt option * expr option * expr option * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sfundecl of string * string list * stmt list
  | Sblock of stmt list
  | Sthrow of expr
  | Stry of stmt list * (string * stmt list) option * stmt list
      (** try body, optional catch (binding, body), finally body *)

type program = stmt list

val expr_nodes : expr -> int
(** Rough node count — the interpreter's per-node cost model unit. *)

val stmt_nodes : stmt -> int
val stmts_nodes : stmt list -> int
