(* Runtime values. Arrays are growable vectors; objects are string-keyed
   hash tables; functions capture their defining environment. *)

type t =
  | Undefined
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of vec
  | Obj of (string, t) Hashtbl.t
  | Fun of fn
  | Native of string * (t list -> t)

and vec = { mutable items : t array; mutable len : int }

and fn = { params : string list; body : Jsast.stmt list; env : env; fname : string }

and env = { tbl : (string, t ref) Hashtbl.t; parent : env option }

exception Js_error of string

let vec_create () = { items = Array.make 8 Undefined; len = 0 }

let vec_of_list vs =
  let items = Array.of_list vs in
  { items = (if Array.length items = 0 then Array.make 8 Undefined else items);
    len = List.length vs }

let vec_get v i = if i < 0 || i >= v.len then Undefined else v.items.(i)

let vec_grow v cap =
  if cap > Array.length v.items then begin
    let items = Array.make (max cap (2 * Array.length v.items)) Undefined in
    Array.blit v.items 0 items 0 v.len;
    v.items <- items
  end

let vec_set v i x =
  if i < 0 then raise (Js_error "negative array index")
  else begin
    vec_grow v (i + 1);
    v.items.(i) <- x;
    if i >= v.len then v.len <- i + 1
  end

let vec_push v x = vec_set v v.len x

let vec_pop v =
  if v.len = 0 then Undefined
  else begin
    v.len <- v.len - 1;
    v.items.(v.len)
  end

let vec_to_list v = List.init v.len (fun i -> v.items.(i))

let type_name = function
  | Undefined -> "undefined"
  | Null -> "object"
  | Bool _ -> "boolean"
  | Num _ -> "number"
  | Str _ -> "string"
  | Arr _ | Obj _ -> "object"
  | Fun _ | Native _ -> "function"

let truthy = function
  | Undefined | Null -> false
  | Bool b -> b
  | Num n -> n <> 0.0 && not (Float.is_nan n)
  | Str s -> s <> ""
  | Arr _ | Obj _ | Fun _ | Native _ -> true

let number_to_string n =
  if Float.is_integer n && Float.abs n < 1e15 then Printf.sprintf "%.0f" n
  else if Float.is_nan n then "NaN"
  else Printf.sprintf "%g" n

let rec to_string = function
  | Undefined -> "undefined"
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Num n -> number_to_string n
  | Str s -> s
  | Arr v -> String.concat "," (List.map to_string (vec_to_list v))
  | Obj _ -> "[object Object]"
  | Fun f -> Printf.sprintf "function %s() { ... }" f.fname
  | Native (n, _) -> Printf.sprintf "function %s() { [native code] }" n

let to_number = function
  | Undefined -> Float.nan
  | Null -> 0.0
  | Bool true -> 1.0
  | Bool false -> 0.0
  | Num n -> n
  | Str s -> (
      match float_of_string_opt (String.trim s) with
      | Some f -> f
      | None -> if String.trim s = "" then 0.0 else Float.nan)
  | Arr _ | Obj _ | Fun _ | Native _ -> Float.nan

(* ToInt32 per ECMA: modulo 2^32, signed *)
let to_int32 v =
  let n = to_number v in
  if Float.is_nan n || Float.is_integer n = false && Float.abs n = Float.infinity then 0l
  else if Float.abs n = Float.infinity then 0l
  else Int32.of_float (Float.rem (Float.of_int (int_of_float n)) 4294967296.0)

let strict_equal a b =
  match (a, b) with
  | Undefined, Undefined | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Num x, Num y -> x = y
  | Str x, Str y -> x = y
  | Arr x, Arr y -> x == y
  | Obj x, Obj y -> x == y
  | Fun x, Fun y -> x == y
  | Native (_, x), Native (_, y) -> x == y
  | _ -> false

let loose_equal a b =
  match (a, b) with
  | (Undefined | Null), (Undefined | Null) -> true
  | Num _, Str _ -> to_number a = to_number b
  | Str _, Num _ -> to_number a = to_number b
  | Bool _, _ -> to_number a = to_number b
  | _, Bool _ -> to_number a = to_number b
  | _ -> strict_equal a b

(* environments *)
let env_create parent = { tbl = Hashtbl.create 8; parent }

let env_define env name v = Hashtbl.replace env.tbl name (ref v)

let rec env_lookup env name =
  match Hashtbl.find_opt env.tbl name with
  | Some r -> Some r
  | None -> ( match env.parent with Some p -> env_lookup p name | None -> None)
