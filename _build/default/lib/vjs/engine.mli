(** Duktape-style embedding API (§6.5).

    Mirrors the lifecycle the paper's baseline measures: allocate an
    engine context (expensive: heap + built-in objects), populate native
    function bindings, evaluate code, and tear the context down. Each
    stage charges its calibrated cost through the engine's charge hook so
    the same engine can run on the host (baseline) or inside a virtine
    (costs accrue as guest cycles), and so snapshot / no-teardown
    optimizations skip exactly the right work. *)

type t

val context_alloc_cycles : int
(** Allocating the context: heap arena, built-in objects, string interning
    tables. Dominant Duktape setup cost. *)

val binding_cycles : int
(** Registering the native bindings for one context. *)

val teardown_cycles : int
(** Freeing the context (walks and frees the heap). *)

val parse_cycles_per_token : int
val eval_cycles_per_node : int

val create : ?charge:(int -> unit) -> unit -> t
(** Allocate a context and populate default bindings (Math, String,
    parseInt, ...); charges [context_alloc_cycles + binding_cycles]. *)

val register : t -> string -> (Jsvalue.t list -> Jsvalue.t) -> unit
(** Bind a native function into the global object (duk_push_c_function). *)

val eval : t -> string -> (Jsvalue.t, string) result
(** Parse and execute a script in the global scope; charges parse and
    per-node evaluation costs. The result is the value of a trailing
    expression statement, or [Undefined]. *)

val call : t -> string -> Jsvalue.t list -> (Jsvalue.t, string) result
(** Call a global function by name. *)

val destroy : t -> unit
(** Charge the teardown cost. The no-teardown optimization simply does
    not call this. *)

val set_charge : t -> (int -> unit) -> unit
(** Swap the charge hook: a snapshot-restored engine was rebuilt without
    charging (the restore memcpy carries that cost), but its subsequent
    execution must charge the current invocation. *)

val console_output : t -> string
(** Text printed via [print]/[console_log]. *)
