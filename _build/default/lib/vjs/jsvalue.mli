(** Runtime values of the vjs JavaScript engine.

    Numbers are IEEE doubles, arrays are growable vectors, objects are
    string-keyed hash tables, and functions capture their defining
    environment (closures). [Native] embeds host functions (the
    [duk_push_c_function] analogue). *)

type t =
  | Undefined
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of vec
  | Obj of (string, t) Hashtbl.t
  | Fun of fn
  | Native of string * (t list -> t)

and vec = { mutable items : t array; mutable len : int }

and fn = { params : string list; body : Jsast.stmt list; env : env; fname : string }

and env = { tbl : (string, t ref) Hashtbl.t; parent : env option }

exception Js_error of string
(** Runtime errors (reference errors, type errors, step-budget
    exhaustion). Catchable by guest [try]. *)

(** {1 Vectors} *)

val vec_create : unit -> vec
val vec_of_list : t list -> vec
val vec_get : vec -> int -> t
(** Out-of-range reads yield [Undefined], as in JS. *)

val vec_set : vec -> int -> t -> unit
(** Grows the vector (holes become [Undefined]).
    @raise Js_error on a negative index. *)

val vec_push : vec -> t -> unit
val vec_pop : vec -> t
val vec_to_list : vec -> t list

(** {1 Coercions (ECMA-flavoured)} *)

val type_name : t -> string
(** The [typeof] string. *)

val truthy : t -> bool
val to_string : t -> string
val number_to_string : float -> string
val to_number : t -> float
val to_int32 : t -> int32
(** ToInt32, used by the bitwise operators. *)

val strict_equal : t -> t -> bool   (** [===]: no coercion, reference equality for objects. *)
val loose_equal : t -> t -> bool    (** [==]: number/string/bool coercion. *)

(** {1 Environments} *)

val env_create : env option -> env
val env_define : env -> string -> t -> unit
val env_lookup : env -> string -> t ref option
(** Walks the scope chain. *)
