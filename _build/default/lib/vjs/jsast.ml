(* AST for the vjs JavaScript subset. [this] is not supported in user
   functions; built-in methods are dispatched on the receiver's kind. *)

type expr =
  | Enum of float
  | Estr of string
  | Ebool of bool
  | Enull
  | Eundefined
  | Eident of string
  | Earray of expr list
  | Eobject of (string * expr) list
  | Efun of string list * stmt list       (* function expression *)
  | Ecall of expr * expr list
  | Emethod of expr * string * expr list  (* receiver.name(args) *)
  | Eprop of expr * string
  | Eindex of expr * expr
  | Eunop of string * expr
  | Ebinop of string * expr * expr
  | Eassign of expr * expr
  | Econd of expr * expr * expr
  | Etypeof of expr

and stmt =
  | Sexpr of expr
  | Svar of string * expr option
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of stmt option * expr option * expr option * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sfundecl of string * string list * stmt list
  | Sblock of stmt list
  | Sthrow of expr
  | Stry of stmt list * (string * stmt list) option * stmt list
      (* try body, optional catch (binding, body), finally body *)

type program = stmt list

(* rough node count, used by the interpreter's cost model *)
let rec expr_nodes = function
  | Enum _ | Estr _ | Ebool _ | Enull | Eundefined | Eident _ -> 1
  | Earray es -> 1 + List.fold_left (fun a e -> a + expr_nodes e) 0 es
  | Eobject fields -> 1 + List.fold_left (fun a (_, e) -> a + expr_nodes e) 0 fields
  | Efun (_, body) -> 1 + stmts_nodes body
  | Ecall (f, args) -> 1 + expr_nodes f + List.fold_left (fun a e -> a + expr_nodes e) 0 args
  | Emethod (r, _, args) ->
      1 + expr_nodes r + List.fold_left (fun a e -> a + expr_nodes e) 0 args
  | Eprop (r, _) -> 1 + expr_nodes r
  | Eindex (r, i) -> 1 + expr_nodes r + expr_nodes i
  | Eunop (_, e) | Etypeof e -> 1 + expr_nodes e
  | Ebinop (_, a, b) -> 1 + expr_nodes a + expr_nodes b
  | Eassign (a, b) -> 1 + expr_nodes a + expr_nodes b
  | Econd (c, a, b) -> 1 + expr_nodes c + expr_nodes a + expr_nodes b

and stmt_nodes = function
  | Sexpr e -> 1 + expr_nodes e
  | Svar (_, e) -> 1 + (match e with Some e -> expr_nodes e | None -> 0)
  | Sif (c, t, f) -> 1 + expr_nodes c + stmts_nodes t + stmts_nodes f
  | Swhile (c, b) -> 1 + expr_nodes c + stmts_nodes b
  | Sfor (i, c, s, b) ->
      1
      + (match i with Some s -> stmt_nodes s | None -> 0)
      + (match c with Some e -> expr_nodes e | None -> 0)
      + (match s with Some e -> expr_nodes e | None -> 0)
      + stmts_nodes b
  | Sreturn e -> 1 + (match e with Some e -> expr_nodes e | None -> 0)
  | Sbreak | Scontinue -> 1
  | Sfundecl (_, _, b) -> 1 + stmts_nodes b
  | Sblock b -> 1 + stmts_nodes b
  | Sthrow e -> 1 + expr_nodes e
  | Stry (b, c, f) ->
      1 + stmts_nodes b
      + (match c with Some (_, cb) -> stmts_nodes cb | None -> 0)
      + stmts_nodes f

and stmts_nodes b = List.fold_left (fun a s -> a + stmt_nodes s) 0 b
