(** The §6.5 JavaScript-virtine workload: base64-encode a buffer inside
    the engine, either on the host (baseline) or in virtine context with
    the snapshot / no-teardown optimizations of Figure 14.

    The virtine embedding follows the paper exactly: the engine runs with
    only three hypercalls available — [snapshot], [get_data] and
    [return_data] — and [get_data]/[snapshot] are once-only, so "if an
    attacker were to gain remote code execution capabilities, the only
    permitted hypercall would terminate the virtine". *)

val base64_js_source : string
(** The untrusted UDF: [encode(data)] over an array of byte values. *)

val make_input : size:int -> bytes
(** Deterministic pseudo-random input buffer. *)

val reference_encode : bytes -> string
(** Host-side reference (vcrypto base64) the JS result must match. *)

type outcome = { latency_cycles : int64; output : string }

val run_baseline : clock:Cycles.Clock.t -> input:bytes -> outcome
(** Allocate a Duktape-style context, bind natives, evaluate the UDF,
    encode, tear down — all on the host (the paper's 419 us baseline). *)

val run_virtine :
  Wasp.Runtime.t -> input:bytes -> snapshot:bool -> teardown:bool -> key:string -> outcome
(** One virtine invocation of the UDF. [snapshot] enables the post-init
    snapshot (reused across calls under [key]); [teardown] controls
    whether the engine free cost is paid (NT arms skip it). *)
