type token = NUM of float | STR of string | IDENT of string | KW of string | PUNCT of string | EOF

let token_name = function
  | NUM f -> Printf.sprintf "number %g" f
  | STR s -> Printf.sprintf "string %S" s
  | IDENT s -> Printf.sprintf "identifier %s" s
  | KW s -> Printf.sprintf "'%s'" s
  | PUNCT s -> Printf.sprintf "'%s'" s
  | EOF -> "end of input"

exception Error of { line : int; msg : string }

let keywords =
  [
    "var"; "let"; "const"; "function"; "return"; "if"; "else"; "while"; "for";
    "true"; "false"; "null"; "undefined"; "break"; "continue"; "new"; "typeof";
    "try"; "catch"; "finally"; "throw";
  ]

(* longest match first *)
let puncts =
  [
    "==="; "!=="; "<<="; ">>=";
    "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>"; "+="; "-="; "*="; "/="; "%=";
    "++"; "--";
    "+"; "-"; "*"; "/"; "%"; "<"; ">"; "="; "("; ")"; "{"; "}"; "["; "]"; ";"; ",";
    "."; "?"; ":"; "!"; "&"; "|"; "^"; "~";
  ]

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
let is_ident c = is_ident_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let pos = ref 0 and line = ref 1 in
  let out = ref [] in
  let fail msg = raise (Error { line = !line; msg }) in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let starts_with s =
    let l = String.length s in
    !pos + l <= n && String.sub src !pos l = s
  in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if starts_with "//" then
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    else if starts_with "/*" then begin
      pos := !pos + 2;
      let closed = ref false in
      while (not !closed) && !pos < n do
        if src.[!pos] = '\n' then incr line;
        if starts_with "*/" then begin
          closed := true;
          pos := !pos + 2
        end
        else incr pos
      done;
      if not !closed then fail "unterminated comment"
    end
    else if is_digit c then begin
      let start = !pos in
      if starts_with "0x" || starts_with "0X" then begin
        pos := !pos + 2;
        while (match peek 0 with
               | Some c ->
                   is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
               | None -> false)
        do
          incr pos
        done;
        let text = String.sub src start (!pos - start) in
        match Int64.of_string_opt text with
        | Some v -> out := (NUM (Int64.to_float v), !line) :: !out
        | None -> fail (Printf.sprintf "bad number %s" text)
      end
      else begin
        while (match peek 0 with Some c -> is_digit c | None -> false) do
          incr pos
        done;
        if peek 0 = Some '.' && (match peek 1 with Some c -> is_digit c | None -> false)
        then begin
          incr pos;
          while (match peek 0 with Some c -> is_digit c | None -> false) do
            incr pos
          done
        end;
        let text = String.sub src start (!pos - start) in
        match float_of_string_opt text with
        | Some v -> out := (NUM v, !line) :: !out
        | None -> fail (Printf.sprintf "bad number %s" text)
      end
    end
    else if is_ident_start c then begin
      let start = !pos in
      while (match peek 0 with Some c -> is_ident c | None -> false) do
        incr pos
      done;
      let text = String.sub src start (!pos - start) in
      if List.mem text keywords then out := (KW text, !line) :: !out
      else out := (IDENT text, !line) :: !out
    end
    else if c = '"' || c = '\'' then begin
      let quote = c in
      incr pos;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !pos < n do
        let d = src.[!pos] in
        if d = quote then begin
          closed := true;
          incr pos
        end
        else if d = '\\' && !pos + 1 < n then begin
          (match src.[!pos + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | '0' -> Buffer.add_char buf '\000'
          | '\\' -> Buffer.add_char buf '\\'
          | '\'' -> Buffer.add_char buf '\''
          | '"' -> Buffer.add_char buf '"'
          | e -> fail (Printf.sprintf "bad escape \\%c" e));
          pos := !pos + 2
        end
        else begin
          if d = '\n' then incr line;
          Buffer.add_char buf d;
          incr pos
        end
      done;
      if not !closed then fail "unterminated string";
      out := (STR (Buffer.contents buf), !line) :: !out
    end
    else begin
      match List.find_opt starts_with puncts with
      | Some p ->
          pos := !pos + String.length p;
          out := (PUNCT p, !line) :: !out
      | None -> fail (Printf.sprintf "unexpected character %C" c)
    end
  done;
  List.rev ((EOF, !line) :: !out)
