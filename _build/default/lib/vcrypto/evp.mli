(** OpenSSL-style EVP layer (§6.4 library integration).

    The paper changed off-the-shelf OpenSSL "so that its 128-bit AES block
    cipher encryption is carried out in virtine context" — a one-keyword
    change plus toolchain integration. This module is the equivalent
    library seam: the same cipher API backed either by the host
    implementation or by a virtine per encryption call.

    In virtine mode each call provisions a shell, restores the cipher
    image snapshot (key schedule already expanded — taken on first use),
    marshals the chunk in via [get_data], encrypts, and publishes the
    result via [return_data]. Those copies are why "virtine creation in
    this example is memory bound". *)

type backend = Native | Virtine of Wasp.Runtime.t

type t

val create : backend -> key:string -> t
(** Set up an AES-128-CBC cipher context. In virtine mode the first
    encryption boots and snapshots the cipher image. *)

val encrypt : t -> iv:bytes -> bytes -> bytes
(** CBC-encrypt one chunk (padded internally to a block multiple).
    Deterministic: both backends produce identical ciphertext. *)

val aes_ni_cycles_per_byte : float
(** Native (host, AES-NI-class) cost used by both backends for the
    cipher arithmetic itself. *)

val image_size : int
(** The virtine cipher image footprint (the paper's was ~21 KB). *)

val clock_of : t -> Cycles.Clock.t option
(** The clock charged by this context (virtine mode only). *)

val native_cycles : len:int -> int
(** Cycles a native encryption of [len] bytes charges. *)
