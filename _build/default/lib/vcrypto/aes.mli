(** AES-128 (FIPS-197), from scratch.

    Stands in for OpenSSL's 128-bit AES block cipher in the §6.4 library
    integration study: the same deeply buried, hot function the paper
    moved into virtine context. ECB is provided for the raw block path
    and CBC because the paper benchmarks [aes-128-cbc].

    The implementation is the straightforward byte-oriented cipher
    (S-box, ShiftRows, MixColumns over GF(2^8)); [work_cycles] gives the
    guest-side cost model used when the cipher runs in virtine context. *)

type key_schedule

val expand_key : string -> key_schedule
(** Key expansion. The key must be exactly 16 bytes.
    @raise Invalid_argument otherwise. *)

val encrypt_block : key_schedule -> bytes -> pos:int -> bytes
(** Encrypt the 16-byte block at [pos]; returns a fresh 16-byte block. *)

val decrypt_block : key_schedule -> bytes -> pos:int -> bytes

val encrypt_ecb : key_schedule -> bytes -> bytes
(** Input length must be a multiple of 16. *)

val decrypt_ecb : key_schedule -> bytes -> bytes

val encrypt_cbc : key_schedule -> iv:bytes -> bytes -> bytes
(** CBC mode; [iv] must be 16 bytes, input a multiple of 16. *)

val decrypt_cbc : key_schedule -> iv:bytes -> bytes -> bytes

val pkcs7_pad : bytes -> bytes
(** Pad to a 16-byte multiple (always adds at least one byte). *)

val pkcs7_unpad : bytes -> bytes option
(** [None] if the padding is malformed. *)

val work_cycles : blocks:int -> int
(** Guest-cycle cost of encrypting [blocks] 16-byte blocks: ~20 cycles/
    byte for a table-free software AES, matching the instruction mix the
    compiled cipher would execute. *)

val key_expansion_cycles : int
