lib/vcrypto/base64.ml: Buffer Char List String
