lib/vcrypto/aes.ml: Array Bytes Char Printf String
