lib/vcrypto/base64.mli:
