lib/vcrypto/evp.mli: Cycles Wasp
