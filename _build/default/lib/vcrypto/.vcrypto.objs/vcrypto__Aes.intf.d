lib/vcrypto/aes.mli:
