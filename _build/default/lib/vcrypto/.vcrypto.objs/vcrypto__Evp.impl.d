lib/vcrypto/evp.ml: Aes Bytes Int64 Printf Vm Wasp
