(** Base64 (RFC 4648) — the workload of the JavaScript virtine study
    (§6.5): the reference implementation the JS engine's output is
    checked against, plus the cost model for the encode loop. *)

val encode : string -> string
val decode : string -> string option
(** [None] on invalid input (bad characters or padding). *)

val encode_cycles : int -> int
(** Guest-cycle cost of encoding [n] input bytes (~6 cycles/byte: table
    lookups and shifts). *)
