(* Byte-oriented AES-128 per FIPS-197. The state is a 16-byte array in
   column-major order (state.(r + 4*c)). *)

let sbox = Array.make 256 0
let inv_sbox = Array.make 256 0

(* GF(2^8) arithmetic with the AES polynomial x^8+x^4+x^3+x+1 (0x11B). *)
let xtime a = if a land 0x80 <> 0 then ((a lsl 1) lxor 0x1B) land 0xFF else (a lsl 1) land 0xFF

let gmul a b =
  let rec go a b acc =
    if b = 0 then acc
    else begin
      let acc = if b land 1 <> 0 then acc lxor a else acc in
      go (xtime a) (b lsr 1) acc
    end
  in
  go a b 0

(* Build the S-box from the multiplicative inverse + affine transform,
   rather than hard-coding the table: self-checking construction. *)
let () =
  (* inverses via brute force (256^2 once at startup is fine) *)
  let inv = Array.make 256 0 in
  for a = 1 to 255 do
    for b = 1 to 255 do
      if gmul a b = 1 then inv.(a) <- b
    done
  done;
  let rotl8 x n = ((x lsl n) lor (x lsr (8 - n))) land 0xFF in
  for a = 0 to 255 do
    let x = inv.(a) in
    let s = x lxor rotl8 x 1 lxor rotl8 x 2 lxor rotl8 x 3 lxor rotl8 x 4 lxor 0x63 in
    sbox.(a) <- s;
    inv_sbox.(s) <- a
  done

type key_schedule = int array array
(* 11 round keys of 16 bytes *)

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1B; 0x36 |]

let expand_key key =
  if String.length key <> 16 then invalid_arg "Aes.expand_key: key must be 16 bytes";
  (* words as 4-byte int arrays *)
  let words = Array.make_matrix 44 4 0 in
  for i = 0 to 3 do
    for j = 0 to 3 do
      words.(i).(j) <- Char.code key.[(4 * i) + j]
    done
  done;
  for i = 4 to 43 do
    let temp = Array.copy words.(i - 1) in
    if i mod 4 = 0 then begin
      (* RotWord + SubWord + Rcon *)
      let t0 = temp.(0) in
      temp.(0) <- sbox.(temp.(1)) lxor rcon.((i / 4) - 1);
      temp.(1) <- sbox.(temp.(2));
      temp.(2) <- sbox.(temp.(3));
      temp.(3) <- sbox.(t0)
    end;
    for j = 0 to 3 do
      words.(i).(j) <- words.(i - 4).(j) lxor temp.(j)
    done
  done;
  Array.init 11 (fun round ->
      Array.init 16 (fun k -> words.((4 * round) + (k / 4)).(k mod 4)))

let add_round_key state rk = for i = 0 to 15 do state.(i) <- state.(i) lxor rk.(i) done

let sub_bytes state = for i = 0 to 15 do state.(i) <- sbox.(state.(i)) done
let inv_sub_bytes state = for i = 0 to 15 do state.(i) <- inv_sbox.(state.(i)) done

(* state layout: state.(r + 4*c)?? FIPS uses s[r][c] with input byte
   in[r + 4c]. We store s.(i) = in.(i), i.e. s.(r + 4c) is NOT the
   layout — we keep bytes in input order and index rows as i mod 4. *)
let shift_rows state =
  let copy = Array.copy state in
  (* row r (i mod 4 = r) shifts left by r columns; columns are i / 4 *)
  for c = 0 to 3 do
    for r = 0 to 3 do
      state.((4 * c) + r) <- copy.((4 * ((c + r) mod 4)) + r)
    done
  done

let inv_shift_rows state =
  let copy = Array.copy state in
  for c = 0 to 3 do
    for r = 0 to 3 do
      state.((4 * ((c + r) mod 4)) + r) <- copy.((4 * c) + r)
    done
  done

let mix_columns state =
  for c = 0 to 3 do
    let b = 4 * c in
    let a0 = state.(b) and a1 = state.(b + 1) and a2 = state.(b + 2) and a3 = state.(b + 3) in
    state.(b) <- gmul a0 2 lxor gmul a1 3 lxor a2 lxor a3;
    state.(b + 1) <- a0 lxor gmul a1 2 lxor gmul a2 3 lxor a3;
    state.(b + 2) <- a0 lxor a1 lxor gmul a2 2 lxor gmul a3 3;
    state.(b + 3) <- gmul a0 3 lxor a1 lxor a2 lxor gmul a3 2
  done

let inv_mix_columns state =
  for c = 0 to 3 do
    let b = 4 * c in
    let a0 = state.(b) and a1 = state.(b + 1) and a2 = state.(b + 2) and a3 = state.(b + 3) in
    state.(b) <- gmul a0 14 lxor gmul a1 11 lxor gmul a2 13 lxor gmul a3 9;
    state.(b + 1) <- gmul a0 9 lxor gmul a1 14 lxor gmul a2 11 lxor gmul a3 13;
    state.(b + 2) <- gmul a0 13 lxor gmul a1 9 lxor gmul a2 14 lxor gmul a3 11;
    state.(b + 3) <- gmul a0 11 lxor gmul a1 13 lxor gmul a2 9 lxor gmul a3 14
  done

let load_state src pos = Array.init 16 (fun i -> Char.code (Bytes.get src (pos + i)))

let store_state state =
  Bytes.init 16 (fun i -> Char.chr state.(i))

let encrypt_block ks src ~pos =
  let state = load_state src pos in
  add_round_key state ks.(0);
  for round = 1 to 9 do
    sub_bytes state;
    shift_rows state;
    mix_columns state;
    add_round_key state ks.(round)
  done;
  sub_bytes state;
  shift_rows state;
  add_round_key state ks.(10);
  store_state state

let decrypt_block ks src ~pos =
  let state = load_state src pos in
  add_round_key state ks.(10);
  inv_shift_rows state;
  inv_sub_bytes state;
  for round = 9 downto 1 do
    add_round_key state ks.(round);
    inv_mix_columns state;
    inv_shift_rows state;
    inv_sub_bytes state
  done;
  add_round_key state ks.(0);
  store_state state

let check_blocks name b =
  if Bytes.length b mod 16 <> 0 then
    invalid_arg (Printf.sprintf "Aes.%s: length must be a multiple of 16" name)

let encrypt_ecb ks src =
  check_blocks "encrypt_ecb" src;
  let out = Bytes.create (Bytes.length src) in
  for blk = 0 to (Bytes.length src / 16) - 1 do
    Bytes.blit (encrypt_block ks src ~pos:(16 * blk)) 0 out (16 * blk) 16
  done;
  out

let decrypt_ecb ks src =
  check_blocks "decrypt_ecb" src;
  let out = Bytes.create (Bytes.length src) in
  for blk = 0 to (Bytes.length src / 16) - 1 do
    Bytes.blit (decrypt_block ks src ~pos:(16 * blk)) 0 out (16 * blk) 16
  done;
  out

let xor16 dst src = for i = 0 to 15 do
    Bytes.set dst i (Char.chr (Char.code (Bytes.get dst i) lxor Char.code (Bytes.get src i)))
  done

let encrypt_cbc ks ~iv src =
  if Bytes.length iv <> 16 then invalid_arg "Aes.encrypt_cbc: iv must be 16 bytes";
  check_blocks "encrypt_cbc" src;
  let out = Bytes.create (Bytes.length src) in
  let prev = ref (Bytes.copy iv) in
  for blk = 0 to (Bytes.length src / 16) - 1 do
    let block = Bytes.sub src (16 * blk) 16 in
    xor16 block !prev;
    let enc = encrypt_block ks block ~pos:0 in
    Bytes.blit enc 0 out (16 * blk) 16;
    prev := enc
  done;
  out

let decrypt_cbc ks ~iv src =
  if Bytes.length iv <> 16 then invalid_arg "Aes.decrypt_cbc: iv must be 16 bytes";
  check_blocks "decrypt_cbc" src;
  let out = Bytes.create (Bytes.length src) in
  let prev = ref (Bytes.copy iv) in
  for blk = 0 to (Bytes.length src / 16) - 1 do
    let dec = decrypt_block ks src ~pos:(16 * blk) in
    xor16 dec !prev;
    Bytes.blit dec 0 out (16 * blk) 16;
    prev := Bytes.sub src (16 * blk) 16
  done;
  out

let pkcs7_pad b =
  let pad = 16 - (Bytes.length b mod 16) in
  let out = Bytes.create (Bytes.length b + pad) in
  Bytes.blit b 0 out 0 (Bytes.length b);
  Bytes.fill out (Bytes.length b) pad (Char.chr pad);
  out

let pkcs7_unpad b =
  let n = Bytes.length b in
  if n = 0 || n mod 16 <> 0 then None
  else begin
    let pad = Char.code (Bytes.get b (n - 1)) in
    if pad < 1 || pad > 16 then None
    else begin
      let ok = ref true in
      for i = n - pad to n - 1 do
        if Char.code (Bytes.get b i) <> pad then ok := false
      done;
      if !ok then Some (Bytes.sub b 0 (n - pad)) else None
    end
  end

(* A software table-free AES runs ~20 cycles/byte on a superscalar core;
   the OpenSSL-with-virtines experiment charges this as the guest-side
   work per block. *)
let work_cycles ~blocks = blocks * 16 * 20

let key_expansion_cycles = 1_100
