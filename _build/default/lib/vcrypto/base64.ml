let alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let encode s =
  let n = String.length s in
  let out = Buffer.create ((n + 2) / 3 * 4) in
  let i = ref 0 in
  while !i + 2 < n do
    let b0 = Char.code s.[!i] and b1 = Char.code s.[!i + 1] and b2 = Char.code s.[!i + 2] in
    Buffer.add_char out alphabet.[b0 lsr 2];
    Buffer.add_char out alphabet.[((b0 land 3) lsl 4) lor (b1 lsr 4)];
    Buffer.add_char out alphabet.[((b1 land 15) lsl 2) lor (b2 lsr 6)];
    Buffer.add_char out alphabet.[b2 land 63];
    i := !i + 3
  done;
  (match n - !i with
  | 1 ->
      let b0 = Char.code s.[!i] in
      Buffer.add_char out alphabet.[b0 lsr 2];
      Buffer.add_char out alphabet.[(b0 land 3) lsl 4];
      Buffer.add_string out "=="
  | 2 ->
      let b0 = Char.code s.[!i] and b1 = Char.code s.[!i + 1] in
      Buffer.add_char out alphabet.[b0 lsr 2];
      Buffer.add_char out alphabet.[((b0 land 3) lsl 4) lor (b1 lsr 4)];
      Buffer.add_char out alphabet.[(b1 land 15) lsl 2];
      Buffer.add_char out '='
  | _ -> ());
  Buffer.contents out

let value_of_char c =
  if c >= 'A' && c <= 'Z' then Some (Char.code c - 65)
  else if c >= 'a' && c <= 'z' then Some (Char.code c - 97 + 26)
  else if c >= '0' && c <= '9' then Some (Char.code c - 48 + 52)
  else if c = '+' then Some 62
  else if c = '/' then Some 63
  else None

let decode s =
  let n = String.length s in
  if n mod 4 <> 0 then None
  else begin
    let out = Buffer.create (n / 4 * 3) in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < n do
      let quad = String.sub s !i 4 in
      let pad =
        if quad.[3] = '=' then if quad.[2] = '=' then 2 else 1 else 0
      in
      (* '=' is only legal at the very end *)
      if pad > 0 && !i + 4 <> n then ok := false
      else begin
        let vals =
          List.filter_map value_of_char
            (List.init (4 - pad) (fun k -> quad.[k]))
        in
        if List.length vals <> 4 - pad then ok := false
        else begin
          match vals with
          | [ a; b; c; d ] ->
              let word = (a lsl 18) lor (b lsl 12) lor (c lsl 6) lor d in
              Buffer.add_char out (Char.chr (word lsr 16));
              Buffer.add_char out (Char.chr ((word lsr 8) land 0xFF));
              Buffer.add_char out (Char.chr (word land 0xFF))
          | [ a; b; c ] ->
              let word = (a lsl 18) lor (b lsl 12) lor (c lsl 6) in
              Buffer.add_char out (Char.chr (word lsr 16));
              Buffer.add_char out (Char.chr ((word lsr 8) land 0xFF))
          | [ a; b ] ->
              let word = (a lsl 18) lor (b lsl 12) in
              Buffer.add_char out (Char.chr (word lsr 16))
          | _ -> ok := false
        end
      end;
      i := !i + 4
    done;
    if !ok then Some (Buffer.contents out) else None
  end

let encode_cycles n = n * 6
