type backend = Native | Virtine of Wasp.Runtime.t

type t = {
  backend : backend;
  ks : Aes.key_schedule;
  key : string;
  snapshot_key : string;
}

let aes_ni_cycles_per_byte = 1.3

let image_size = 21 * 1024
(* the paper's OpenSSL virtine image: cipher code + newlib + key state *)

let native_cycles ~len = int_of_float (float_of_int len *. aes_ni_cycles_per_byte)

let counter = ref 0

let create backend ~key =
  incr counter;
  {
    backend;
    ks = Aes.expand_key key;
    key;
    snapshot_key = Printf.sprintf "evp-aes-%d" !counter;
  }

type Wasp.Univ.t += Cipher_state of Aes.key_schedule

let encrypt_virtine t w ~iv data =
  let padded = Aes.pkcs7_pad data in
  let policy =
    Wasp.Policy.of_list [ Wasp.Hc.snapshot; Wasp.Hc.get_data; Wasp.Hc.return_data ]
  in
  let result =
    Wasp.Runtime.run_native w ~name:"aes-cbc" ~mem_size:(128 * 1024) ~policy
      ~input:padded ~snapshot_key:t.snapshot_key
      ~body:(fun ctx ~restored ->
        let ks =
          match restored with
          | Some (Cipher_state ks) -> ks
          | Some _ | None ->
              (* first run: the image (cipher code + libc) occupies its
                 footprint and the key schedule is expanded before the
                 snapshot is taken *)
              let image_addr = Wasp.Runtime.Native_ctx.alloc ctx image_size in
              let mem = Wasp.Runtime.Native_ctx.mem ctx in
              (* the image bytes are code, not zeroes: make the footprint
                 real so the snapshot captures it *)
              for i = 0 to (image_size / 512) - 1 do
                Vm.Memory.write_u8 mem (image_addr + (i * 512)) 0x90
              done;
              Wasp.Runtime.Native_ctx.charge ctx Aes.key_expansion_cycles;
              Wasp.Runtime.Native_ctx.offer_snapshot_state ctx (fun () ->
                  Cipher_state (Aes.expand_key t.key));
              ignore (Wasp.Runtime.Native_ctx.hypercall ctx Wasp.Hc.snapshot [||]);
              t.ks
        in
        (* pull the plaintext into guest memory *)
        let buf = Wasp.Runtime.Native_ctx.alloc ctx (Bytes.length padded) in
        let n =
          Wasp.Runtime.Native_ctx.hypercall ctx Wasp.Hc.get_data
            [| Int64.of_int buf; Int64.of_int (Bytes.length padded) |]
        in
        let n = Int64.to_int n in
        let mem = Wasp.Runtime.Native_ctx.mem ctx in
        let plain = Vm.Memory.read_bytes mem ~off:buf ~len:n in
        (* the cipher arithmetic, charged at AES-NI-class cost *)
        Wasp.Runtime.Native_ctx.charge ctx (native_cycles ~len:n);
        let cipher = Aes.encrypt_cbc ks ~iv plain in
        Vm.Memory.write_bytes mem ~off:buf cipher;
        Wasp.Runtime.Native_ctx.hypercall ctx Wasp.Hc.return_data
          [| Int64.of_int buf; Int64.of_int (Bytes.length cipher) |])
      ()
  in
  match result.Wasp.Runtime.output with
  | Some out -> out
  | None -> failwith "Evp.encrypt: virtine produced no output"

let encrypt t ~iv data =
  match t.backend with
  | Native ->
      let padded = Aes.pkcs7_pad data in
      Aes.encrypt_cbc t.ks ~iv padded
  | Virtine w -> encrypt_virtine t w ~iv data

let clock_of t =
  match t.backend with Native -> None | Virtine w -> Some (Wasp.Runtime.clock w)
