type open_file = { path : string; mutable offset : int }

type t = {
  files : (string, string) Hashtbl.t;
  fds : (int, open_file) Hashtbl.t;
  mutable next_fd : int;
  mutable next_endpoint : int;
}

let create () =
  { files = Hashtbl.create 16; fds = Hashtbl.create 16; next_fd = 3; next_endpoint = 0 }

let add_file t ~path contents = Hashtbl.replace t.files path contents

let remove_file t ~path = Hashtbl.remove t.files path

let file_size t ~path =
  match Hashtbl.find_opt t.files path with Some c -> Some (String.length c) | None -> None

let open_file t ~path =
  if Hashtbl.mem t.files path then begin
    let fd = t.next_fd in
    t.next_fd <- t.next_fd + 1;
    Hashtbl.replace t.fds fd { path; offset = 0 };
    Some fd
  end
  else None

let read_fd t ~fd ~len =
  match Hashtbl.find_opt t.fds fd with
  | None -> None
  | Some f -> (
      match Hashtbl.find_opt t.files f.path with
      | None -> None
      | Some contents ->
          let avail = max 0 (String.length contents - f.offset) in
          let n = min len avail in
          let b = Bytes.of_string (String.sub contents f.offset n) in
          f.offset <- f.offset + n;
          Some b)

let close_fd t ~fd =
  if Hashtbl.mem t.fds fd then begin
    Hashtbl.remove t.fds fd;
    true
  end
  else false

type endpoint = { id : int; incoming : Buffer.t; peer_incoming : Buffer.t }

let socket_pair t =
  let a_buf = Buffer.create 256 and b_buf = Buffer.create 256 in
  let a = { id = t.next_endpoint; incoming = a_buf; peer_incoming = b_buf } in
  let b = { id = t.next_endpoint + 1; incoming = b_buf; peer_incoming = a_buf } in
  t.next_endpoint <- t.next_endpoint + 2;
  (a, b)

let send ep b =
  Buffer.add_bytes ep.peer_incoming b;
  Bytes.length b

let recv ep ~max =
  let avail = Buffer.length ep.incoming in
  let n = min max avail in
  let out = Bytes.of_string (Buffer.sub ep.incoming 0 n) in
  let rest = Buffer.sub ep.incoming n (avail - n) in
  Buffer.clear ep.incoming;
  Buffer.add_string ep.incoming rest;
  out

let pending ep = Buffer.length ep.incoming

let endpoint_id ep = ep.id
