type state = Pending of (unit -> Runtime.result) | Done of Runtime.result

type t = { mutable state : state }

let spawn w image ?policy ?handlers ?input ?args ?snapshot_key ?fuel () =
  {
    state =
      Pending
        (fun () -> Runtime.run w image ?policy ?handlers ?input ?args ?snapshot_key ?fuel ());
  }

let poll t = match t.state with Done r -> Some r | Pending _ -> None

let join t =
  match t.state with
  | Done r -> r
  | Pending thunk ->
      let r = thunk () in
      t.state <- Done r;
      r

let join_all ts = List.map join ts

let is_done t = match t.state with Done _ -> true | Pending _ -> false
