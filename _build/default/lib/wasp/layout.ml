let arg_area = 0x0
let arg_area_size = 0x500
let stack_top = 0x8000
let stack_bottom = 0x4000
let image_base = 0x8000
let default_mem_size = 64 * 1024
