(** Host-side resources a virtine client may expose through hypercalls.

    Stands in for the Linux host kernel services the paper's handlers
    delegate to ("a validated read() will turn into a read() on the host
    filesystem"): an in-memory filesystem and in-memory stream sockets.
    Handlers — not this module — decide whether a virtine may touch any of
    it. *)

type t

val create : unit -> t

(** {1 Files} *)

val add_file : t -> path:string -> string -> unit
val remove_file : t -> path:string -> unit
val file_size : t -> path:string -> int option

val open_file : t -> path:string -> int option
(** Returns a descriptor, or [None] if the path does not exist. *)

val read_fd : t -> fd:int -> len:int -> bytes option
(** Read from the descriptor's offset, advancing it. [None] on a bad
    descriptor; [Some ""] at EOF. *)

val close_fd : t -> fd:int -> bool

(** {1 Sockets}

    A socket pair is a bidirectional in-memory channel; the guest holds
    one end (via send/recv hypercalls) and the driver or the event
    simulator holds the other. *)

type endpoint

val socket_pair : t -> endpoint * endpoint

val send : endpoint -> bytes -> int
(** Enqueue bytes toward the peer; returns the count written. *)

val recv : endpoint -> max:int -> bytes
(** Dequeue up to [max] bytes sent by the peer; empty if none pending. *)

val pending : endpoint -> int
(** Bytes available to [recv]. *)

val endpoint_id : endpoint -> int
