lib/wasp/layout.mli:
