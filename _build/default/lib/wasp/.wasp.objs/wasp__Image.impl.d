lib/wasp/image.ml: Asm Bytes Layout Vm
