lib/wasp/policy.mli: Format
