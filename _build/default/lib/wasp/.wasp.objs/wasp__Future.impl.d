lib/wasp/future.ml: List Runtime
