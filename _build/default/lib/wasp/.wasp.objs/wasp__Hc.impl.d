lib/wasp/hc.ml: Printf
