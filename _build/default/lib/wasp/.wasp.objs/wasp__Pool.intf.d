lib/wasp/pool.mli: Kvmsim Vm
