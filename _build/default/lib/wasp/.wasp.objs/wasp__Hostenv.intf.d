lib/wasp/hostenv.mli:
