lib/wasp/policy.ml: Format Hc Int64 List
