lib/wasp/trace.ml: Format Hc List Vm
