lib/wasp/runtime.ml: Array Buffer Bytes Cycles Handlers Hashtbl Hc Hostenv Image Int64 Inv Kvmsim Layout List Logs Option Policy Pool Snapshot_store Trace Univ Vm
