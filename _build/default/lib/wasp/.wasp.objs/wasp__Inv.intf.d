lib/wasp/inv.mli: Buffer Cycles Hostenv Vm
