lib/wasp/image.mli: Asm Vm
