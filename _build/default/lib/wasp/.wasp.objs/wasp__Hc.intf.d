lib/wasp/hc.mli:
