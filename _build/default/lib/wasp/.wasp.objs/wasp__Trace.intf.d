lib/wasp/trace.mli: Format Vm
