lib/wasp/hostenv.ml: Buffer Bytes Hashtbl String
