lib/wasp/univ.mli:
