lib/wasp/snapshot_store.ml: Array Bytes Hashtbl Instr List Univ Vm
