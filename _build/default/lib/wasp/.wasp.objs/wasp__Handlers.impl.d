lib/wasp/handlers.ml: Array Buffer Bytes Cycles Hc Hostenv Int64 Inv Vm
