lib/wasp/handlers.mli: Inv
