lib/wasp/runtime.mli: Cycles Hostenv Image Inv Kvmsim Policy Pool Snapshot_store Trace Univ Vm
