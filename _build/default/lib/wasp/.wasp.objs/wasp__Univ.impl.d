lib/wasp/univ.ml:
