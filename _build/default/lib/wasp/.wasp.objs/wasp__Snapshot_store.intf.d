lib/wasp/snapshot_store.mli: Univ Vm
