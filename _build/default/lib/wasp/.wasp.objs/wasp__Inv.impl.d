lib/wasp/inv.ml: Buffer Cycles Hostenv Vm
