lib/wasp/layout.ml:
