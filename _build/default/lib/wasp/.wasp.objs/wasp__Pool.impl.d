lib/wasp/pool.ml: Cycles Hashtbl Int64 Kvmsim Stack Vm
