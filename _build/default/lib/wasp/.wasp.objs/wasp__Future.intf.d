lib/wasp/future.mli: Image Inv Policy Runtime
