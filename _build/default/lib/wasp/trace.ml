type event =
  | Provisioned of { from_pool : bool; mem_size : int }
  | Image_loaded of { name : string; bytes : int }
  | Snapshot_restored of { key : string; bytes : int }
  | Snapshot_captured of { key : string; bytes : int }
  | Booted of { mode : Vm.Modes.t }
  | Hypercall of { nr : int; allowed : bool }
  | Finished of { exited : bool; cycles : int64 }

let pp_event ppf = function
  | Provisioned { from_pool; mem_size } ->
      Format.fprintf ppf "provisioned (%s, %d KB)"
        (if from_pool then "pooled" else "fresh")
        (mem_size / 1024)
  | Image_loaded { name; bytes } -> Format.fprintf ppf "loaded image %s (%d B)" name bytes
  | Snapshot_restored { key; bytes } ->
      Format.fprintf ppf "restored snapshot %s (%d B)" key bytes
  | Snapshot_captured { key; bytes } ->
      Format.fprintf ppf "captured snapshot %s (%d B)" key bytes
  | Booted { mode } -> Format.fprintf ppf "booted to %a" Vm.Modes.pp mode
  | Hypercall { nr; allowed } ->
      Format.fprintf ppf "hypercall %s: %s" (Hc.name nr) (if allowed then "ok" else "denied")
  | Finished { exited; cycles } ->
      Format.fprintf ppf "finished (%s, %Ld cycles)" (if exited then "exit" else "abnormal") cycles

type t = { mutable items : event list; mutable n : int; capacity : int }

let create ?(capacity = 4096) () = { items = []; n = 0; capacity }

let record t e =
  t.items <- e :: t.items;
  t.n <- t.n + 1;
  if t.n > 2 * t.capacity then begin
    (* amortized trim: keep the newest [capacity] *)
    t.items <- List.filteri (fun i _ -> i < t.capacity) t.items;
    t.n <- t.capacity
  end

let events t = List.rev (List.filteri (fun i _ -> i < t.capacity) t.items)

let clear t =
  t.items <- [];
  t.n <- 0

let hypercalls t =
  List.filter_map (function Hypercall { nr; allowed } -> Some (nr, allowed) | _ -> None)
    (events t)

let count t = min t.n t.capacity
