(** Guest physical memory layout shared by the toolchain and the runtime.

    {v
      0x0000 .. 0x04ff   argument / marshalling area (args land at 0x0, §6.1)
      0x0500 .. 0x0fff   GDT
      0x1000 .. 0x3fff   page tables (long mode)
      0x4000 .. 0x7fff   stack (grows down from 0x8000)
      0x8000 ..          image: code + data, then the heap (brk grows up)
    v}

    Keeping the stack and tables below the image means a virtine's memory
    footprint is contiguous from 0, which is what the snapshot cost model
    measures. *)

val arg_area : int         (** 0x0 *)
val arg_area_size : int
val stack_top : int        (** initial SP: 0x8000 *)
val stack_bottom : int     (** 0x4000; SP below this means overflow *)
val image_base : int       (** 0x8000 — where Wasp loads images (§5.1) *)
val default_mem_size : int (** 64 KB default guest region *)
