type t = ..
