(** Execution tracing.

    An optional per-runtime event log recording what each invocation did:
    provisioning, image loads vs snapshot restores, every hypercall with
    its policy outcome, and the exit. Useful for debugging virtine
    clients and for asserting isolation properties in tests. *)

type event =
  | Provisioned of { from_pool : bool; mem_size : int }
  | Image_loaded of { name : string; bytes : int }
  | Snapshot_restored of { key : string; bytes : int }
  | Snapshot_captured of { key : string; bytes : int }
  | Booted of { mode : Vm.Modes.t }
  | Hypercall of { nr : int; allowed : bool }
  | Finished of { exited : bool; cycles : int64 }

val pp_event : Format.formatter -> event -> unit

type t

val create : ?capacity:int -> unit -> t
(** Ring buffer of the most recent [capacity] (default 4096) events. *)

val record : t -> event -> unit
val events : t -> event list
(** Oldest first. *)

val clear : t -> unit

val hypercalls : t -> (int * bool) list
(** Just the hypercall events: (number, allowed). *)

val count : t -> int
(** Events currently retained. *)
