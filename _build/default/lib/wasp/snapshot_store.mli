(** Snapshot registry (§5.2, Figure 7).

    The first execution of a function boots its environment, initializes
    its runtime and then hypercalls [snapshot]; later executions restore
    the captured state (a memcpy of the memory footprint) and skip the
    boot path entirely. The restore cost is exactly the copy, which is
    why Figure 12's curve is memory-bandwidth bound.

    Snapshot state is deliberately shared across future virtines of the
    same function — the paper warns that "care must be taken in describing
    what memory is saved" — so the registry is keyed explicitly. *)

type entry = {
  mem_image : bytes;             (** guest memory from 0 to [footprint] *)
  footprint : int;
  regs : int64 array;
  pc : int;
  mode : Vm.Modes.t;
  native_state : (unit -> Univ.t) option;
      (** for native-payload virtines: rebuilds the embedded runtime state
          the memory image represents (see {!Runtime.run_native}). *)
}

type t

val create : unit -> t

val capture :
  t ->
  key:string ->
  mem:Vm.Memory.t ->
  cpu:Vm.Cpu.t ->
  native_state:(unit -> Univ.t) option ->
  int
(** Capture guest state under [key]; the memory image is trimmed to its
    footprint (index of the last nonzero byte). Returns the footprint in
    bytes so the caller can charge the copy. *)

val find : t -> key:string -> entry option

val restore : entry -> mem:Vm.Memory.t -> cpu:Vm.Cpu.t -> int
(** Blit the memory image back and reinstate registers/PC/mode; the
    target memory must be at least as large as the footprint and is
    assumed clean beyond it. Returns the bytes copied. *)

val restore_cow : entry -> mem:Vm.Memory.t -> cpu:Vm.Cpu.t -> int * int
(** Copy-on-write reset: restore only the pages dirtied since the last
    restore (from the memory image below the footprint, zero above it)
    and reinstate registers. Returns (pages, bytes) copied. Only valid
    when [mem] already held this snapshot's state before the dirtying
    run — i.e. on a retained shell. *)

val clear : t -> key:string -> unit
val reset : t -> unit
val count : t -> int
