exception Validation_failed

let max_transfer = 1 lsl 20
(* Cap single transfers at 1 MB: a hostile guest cannot ask the host to
   build multi-gigabyte buffers. *)

let clamp_len len = if len < 0 || len > max_transfer then raise Validation_failed else len

let guest_read_buf (inv : Inv.t) ~ptr ~len =
  let ptr = Int64.to_int ptr in
  let len = clamp_len len in
  try Vm.Memory.read_bytes inv.mem ~off:ptr ~len with Vm.Memory.Fault _ -> raise Validation_failed

let guest_write_buf (inv : Inv.t) ~ptr b =
  let ptr = Int64.to_int ptr in
  try Vm.Memory.write_bytes inv.mem ~off:ptr b with Vm.Memory.Fault _ -> raise Validation_failed

let guest_path (inv : Inv.t) ~ptr =
  let ptr = Int64.to_int ptr in
  try Vm.Memory.read_cstring inv.mem ~off:ptr ~max:4096
  with Vm.Memory.Fault _ -> raise Validation_failed

let charge (inv : Inv.t) cost =
  Cycles.Clock.advance_int inv.clock (Cycles.Costs.jitter inv.rng ~pct:0.08 cost)

let with_validation (inv : Inv.t) f =
  try f ()
  with Validation_failed ->
    inv.pointer_violations <- inv.pointer_violations + 1;
    Hc.err_fault

(* read(fd, buf, len): fd 0 is the connection; fd >= 3 are host files. *)
let h_read (inv : Inv.t) args =
  with_validation inv (fun () ->
      charge inv Cycles.Costs.host_read;
      let fd = Int64.to_int args.(0) in
      let ptr = args.(1) in
      let len = clamp_len (Int64.to_int args.(2)) in
      if fd = 0 then begin
        match inv.conn with
        | None -> Hc.err_badf
        | Some ep ->
            let data = Hostenv.recv ep ~max:len in
            guest_write_buf inv ~ptr data;
            Int64.of_int (Bytes.length data)
      end
      else begin
        match Hostenv.read_fd inv.env ~fd ~len with
        | None -> Hc.err_badf
        | Some data ->
            guest_write_buf inv ~ptr data;
            Int64.of_int (Bytes.length data)
      end)

(* write(fd, buf, len): fd 0 is the connection; 1 and 2 the console. *)
let h_write (inv : Inv.t) args =
  with_validation inv (fun () ->
      charge inv Cycles.Costs.host_write;
      let fd = Int64.to_int args.(0) in
      let data = guest_read_buf inv ~ptr:args.(1) ~len:(Int64.to_int args.(2)) in
      match fd with
      | 0 -> (
          match inv.conn with
          | None -> Hc.err_badf
          | Some ep -> Int64.of_int (Hostenv.send ep data))
      | 1 | 2 ->
          Buffer.add_bytes inv.console data;
          Int64.of_int (Bytes.length data)
      | _ -> Hc.err_badf)

let h_open (inv : Inv.t) args =
  with_validation inv (fun () ->
      charge inv Cycles.Costs.host_open;
      let path = guest_path inv ~ptr:args.(0) in
      match Hostenv.open_file inv.env ~path with
      | Some fd -> Int64.of_int fd
      | None -> Hc.err_noent)

let h_close (inv : Inv.t) args =
  charge inv Cycles.Costs.host_close;
  if Hostenv.close_fd inv.env ~fd:(Int64.to_int args.(0)) then 0L else Hc.err_badf

let h_stat (inv : Inv.t) args =
  with_validation inv (fun () ->
      charge inv Cycles.Costs.host_stat;
      let path = guest_path inv ~ptr:args.(0) in
      match Hostenv.file_size inv.env ~path with
      | Some size -> Int64.of_int size
      | None -> Hc.err_noent)

let h_send (inv : Inv.t) args =
  with_validation inv (fun () ->
      charge inv Cycles.Costs.host_send;
      match inv.conn with
      | None -> Hc.err_badf
      | Some ep ->
          let data = guest_read_buf inv ~ptr:args.(1) ~len:(Int64.to_int args.(2)) in
          Int64.of_int (Hostenv.send ep data))

let h_recv (inv : Inv.t) args =
  with_validation inv (fun () ->
      charge inv Cycles.Costs.host_recv;
      match inv.conn with
      | None -> Hc.err_badf
      | Some ep ->
          let max = clamp_len (Int64.to_int args.(2)) in
          let data = Hostenv.recv ep ~max in
          guest_write_buf inv ~ptr:args.(1) data;
          Int64.of_int (Bytes.length data))

let h_get_data (inv : Inv.t) args =
  with_validation inv (fun () ->
      if inv.got_data then Hc.err_inval
      else begin
        inv.got_data <- true;
        let max = clamp_len (Int64.to_int args.(1)) in
        let n = min max (Bytes.length inv.input) in
        let data = Bytes.sub inv.input 0 n in
        charge inv (Cycles.Costs.host_read + Cycles.Costs.memcpy_cost n);
        guest_write_buf inv ~ptr:args.(0) data;
        Int64.of_int n
      end)

let h_return_data (inv : Inv.t) args =
  with_validation inv (fun () ->
      if inv.returned_data then Hc.err_inval
      else begin
        inv.returned_data <- true;
        let data = guest_read_buf inv ~ptr:args.(0) ~len:(Int64.to_int args.(1)) in
        charge inv (Cycles.Costs.host_write + Cycles.Costs.memcpy_cost (Bytes.length data));
        inv.output <- Some data;
        Int64.of_int (Bytes.length data)
      end)

(* brk(delta): bump the guest heap break; returns the old break. *)
let h_brk (inv : Inv.t) args =
  let delta = Int64.to_int args.(0) in
  let old = inv.heap_brk in
  let proposed = old + delta in
  if proposed < 0 || proposed > Vm.Memory.size inv.mem then Hc.err_inval
  else begin
    inv.heap_brk <- proposed;
    Int64.of_int old
  end

let h_clock (inv : Inv.t) _args = Cycles.Clock.now inv.clock

let h_getrandom (inv : Inv.t) _args = Cycles.Rng.int64 inv.rng

let canned nr : Inv.handler option =
  if nr = Hc.read then Some h_read
  else if nr = Hc.write then Some h_write
  else if nr = Hc.open_ then Some h_open
  else if nr = Hc.close then Some h_close
  else if nr = Hc.stat then Some h_stat
  else if nr = Hc.send then Some h_send
  else if nr = Hc.recv then Some h_recv
  else if nr = Hc.get_data then Some h_get_data
  else if nr = Hc.return_data then Some h_return_data
  else if nr = Hc.brk then Some h_brk
  else if nr = Hc.clock then Some h_clock
  else if nr = Hc.getrandom then Some h_getrandom
  else None
