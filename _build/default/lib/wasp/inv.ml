type t = {
  mem : Vm.Memory.t;
  env : Hostenv.t;
  clock : Cycles.Clock.t;
  rng : Cycles.Rng.t;
  conn : Hostenv.endpoint option;
  input : bytes;
  console : Buffer.t;
  mutable output : bytes option;
  mutable got_data : bool;
  mutable returned_data : bool;
  mutable snapshot_taken : bool;
  mutable heap_brk : int;
  mutable exit_code : int64 option;
  mutable hypercalls : int;
  mutable denied : int;
  mutable pointer_violations : int;
}

type handler = t -> int64 array -> int64

let create ~mem ~env ~clock ~rng ?conn ~input ~heap_brk () =
  {
    mem;
    env;
    clock;
    rng;
    conn;
    input;
    console = Buffer.create 64;
    output = None;
    got_data = false;
    returned_data = false;
    snapshot_taken = false;
    heap_brk;
    exit_code = None;
    hypercalls = 0;
    denied = 0;
    pointer_violations = 0;
  }
