(** Asynchronous virtines.

    §2: "virtines could, given support in the hypervisor, behave like
    asynchronous functions or futures" (the goroutine model of Gotee).
    This module supplies that support: [spawn] captures an invocation,
    [join] forces it and caches the result, [poll] observes without
    forcing. [join_all] completes a batch.

    The virtual clock is single-threaded, so cost accounting remains
    serial — the API provides the programming model (deferred, memoized
    invocations), not wall-clock overlap. *)

type t

val spawn :
  Runtime.t ->
  Image.t ->
  ?policy:Policy.t ->
  ?handlers:(int -> Inv.handler option) ->
  ?input:bytes ->
  ?args:int64 list ->
  ?snapshot_key:string ->
  ?fuel:int ->
  unit ->
  t
(** Capture an invocation without running it. *)

val poll : t -> Runtime.result option
(** [Some result] once the future has been forced; never forces. *)

val join : t -> Runtime.result
(** Force the invocation (at most once; the result is cached). *)

val join_all : t list -> Runtime.result list

val is_done : t -> bool
