type entry = {
  mem_image : bytes;
  footprint : int;
  regs : int64 array;
  pc : int;
  mode : Vm.Modes.t;
  native_state : (unit -> Univ.t) option;
}

type t = (string, entry) Hashtbl.t

let create () = Hashtbl.create 16

let trim_length b =
  let rec go i = if i < 0 then 0 else if Bytes.get b i <> '\000' then i + 1 else go (i - 1) in
  go (Bytes.length b - 1)

let capture t ~key ~mem ~cpu ~native_state =
  let full = Vm.Memory.snapshot mem in
  let footprint = trim_length full in
  let mem_image = Bytes.sub full 0 footprint in
  let regs = Array.init Instr.num_regs (fun r -> Vm.Cpu.get_reg cpu r) in
  let entry =
    {
      mem_image;
      footprint;
      regs;
      pc = Vm.Cpu.pc cpu;
      mode = Vm.Cpu.mode cpu;
      native_state;
    }
  in
  Hashtbl.replace t key entry;
  footprint

let find t ~key = Hashtbl.find_opt t key

let restore_regs entry ~cpu =
  Vm.Cpu.reset cpu ~mode:entry.mode;
  Array.iteri (fun r v -> Vm.Cpu.set_reg cpu r v) entry.regs;
  Vm.Cpu.set_pc cpu entry.pc

let restore entry ~mem ~cpu =
  Vm.Memory.write_bytes mem ~off:0 entry.mem_image;
  restore_regs entry ~cpu;
  Vm.Memory.clear_dirty mem;
  entry.footprint

let restore_cow entry ~mem ~cpu =
  let page = Vm.Memory.page_size in
  let dirty = Vm.Memory.dirty_pages mem in
  let bytes = ref 0 in
  List.iter
    (fun p ->
      let start = p * page in
      let stop = min (start + page) (Vm.Memory.size mem) in
      let from_image = min stop entry.footprint in
      if from_image > start then begin
        Vm.Memory.write_bytes mem ~off:start
          (Bytes.sub entry.mem_image start (from_image - start));
        bytes := !bytes + (from_image - start)
      end;
      if stop > from_image then begin
        let zero_from = max start from_image in
        Vm.Memory.write_bytes mem ~off:zero_from (Bytes.make (stop - zero_from) '\000');
        bytes := !bytes + (stop - zero_from)
      end)
    dirty;
  restore_regs entry ~cpu;
  Vm.Memory.clear_dirty mem;
  (List.length dirty, !bytes)

let clear t ~key = Hashtbl.remove t key
let reset t = Hashtbl.reset t
let count t = Hashtbl.length t
