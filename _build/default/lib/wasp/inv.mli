(** Per-invocation state shared between the run loop and hypercall
    handlers: the guest's descriptor table, its connection endpoint, the
    input/output data channel, and bookkeeping for the once-only
    hypercalls. *)

type t = {
  mem : Vm.Memory.t;
  env : Hostenv.t;
  clock : Cycles.Clock.t;
  rng : Cycles.Rng.t;
  conn : Hostenv.endpoint option;
      (** fd 0: the connection this invocation serves, if any. *)
  input : bytes;  (** source for [get_data]. *)
  console : Buffer.t;  (** sink for [write] to fd 1/2. *)
  mutable output : bytes option;  (** set by [return_data]. *)
  mutable got_data : bool;        (** [get_data] is once-only (§6.5). *)
  mutable returned_data : bool;   (** [return_data] is once-only. *)
  mutable snapshot_taken : bool;  (** [snapshot] is once-only. *)
  mutable heap_brk : int;
  mutable exit_code : int64 option;
  mutable hypercalls : int;
  mutable denied : int;
  mutable pointer_violations : int;
      (** guest pointers that failed handler validation. *)
}

type handler = t -> int64 array -> int64
(** A hypercall handler: receives guest registers r1-r5 and returns the
    value for r0. Handlers run host-side and must treat every guest
    argument as hostile (§3.2). *)

val create :
  mem:Vm.Memory.t ->
  env:Hostenv.t ->
  clock:Cycles.Clock.t ->
  rng:Cycles.Rng.t ->
  ?conn:Hostenv.endpoint ->
  input:bytes ->
  heap_brk:int ->
  unit ->
  t
