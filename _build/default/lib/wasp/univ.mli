(** Open universal type for embedding client state in Wasp structures
    (e.g. a language runtime's engine context inside a snapshot entry).
    Clients extend it: [type Univ.t += My_state of foo]. *)

type t = ..
