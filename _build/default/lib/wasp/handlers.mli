(** Canned hypercall handlers.

    The general-purpose handlers Wasp "provides out-of-the-box" (§5.1):
    POSIX-like file and socket services that validate every guest-supplied
    pointer and length before touching host state, then delegate to
    {!Hostenv}. Each charges the calibrated host-kernel service cost.
    Custom client handlers can override any of these per invocation. *)

val guest_read_buf : Inv.t -> ptr:int64 -> len:int -> bytes
(** Validated copy out of guest memory.
    @raise Validation_failed if the range is not fully inside the guest. *)

val guest_write_buf : Inv.t -> ptr:int64 -> bytes -> unit

exception Validation_failed

val canned : int -> Inv.handler option
(** The built-in handler for a hypercall number, if one exists. [exit] and
    [snapshot] are handled by the run loop itself, not here. Handlers
    return {!Hc.err_fault} (and count a pointer violation) when guest
    pointers fail validation rather than raising. *)
