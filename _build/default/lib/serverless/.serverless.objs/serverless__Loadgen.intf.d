lib/serverless/loadgen.mli:
