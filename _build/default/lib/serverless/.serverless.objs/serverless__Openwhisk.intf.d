lib/serverless/openwhisk.mli: Cycles
