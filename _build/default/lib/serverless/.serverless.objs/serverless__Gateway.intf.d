lib/serverless/gateway.mli: Vespid
