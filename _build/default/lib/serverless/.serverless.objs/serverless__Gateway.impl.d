lib/serverless/gateway.ml: Bytes List Option Printf String Vespid Vhttp
