lib/serverless/loadgen.ml: Array Dessim Float Int64 List Stats
