lib/serverless/openwhisk.ml: Bytes Char Cycles Hashtbl Int64 List Vjs
