lib/serverless/vespid.ml: Hashtbl List Vjs Wasp
