lib/serverless/vespid.mli: Wasp
