(** Container-based serverless baseline (the paper's vanilla OpenWhisk
    comparison in Figure 15).

    Models the standard container lifecycle: a cold invocation pays
    container creation plus Node.js/V8 runtime startup (hundreds of
    milliseconds); warm invocations reuse a per-function container kept
    alive for a grace period and pay only the invoker proxy overhead plus
    execution. Execution itself uses the same JS engine with a JIT-class
    speedup factor, since OpenWhisk runs V8 rather than Duktape. *)

type t

exception Unknown_function of string

val cold_start_cycles : int    (** container create + runtime boot (~480 ms) *)
val warm_overhead_cycles : int (** invoker/proxy/activation path (~9 ms) *)
val keepalive_cycles : int64   (** idle container grace period (~60 s) *)
val v8_speedup : float         (** V8 vs. our interpreter on the same UDF *)

val create : clock:Cycles.Clock.t -> ?seed:int -> ?max_containers:int -> unit -> t

val register : t -> name:string -> source:string -> entry:string -> unit

val invoke : t -> now:int64 -> name:string -> input:bytes -> (string, string) result * int64
(** [invoke t ~now ...]: [now] is the platform's wall-clock (sim time)
    used for keep-alive expiry decisions. Returns the result and the
    invocation latency in cycles (cold starts included).
    @raise Unknown_function *)

val cold_starts : t -> int
val warm_hits : t -> int
