type t = { wasp : Wasp.Runtime.t; functions : (string, Vjs.Isolate.t) Hashtbl.t }

exception Unknown_function of string

let create wasp = { wasp; functions = Hashtbl.create 8 }

let register t ~name ~source ~entry =
  Hashtbl.replace t.functions name
    (Vjs.Isolate.create t.wasp ~key:("vespid:" ^ name) ~source ~entry)

let registered t = Hashtbl.fold (fun k _ acc -> k :: acc) t.functions [] |> List.sort compare

let invoke_timed t ~name ~input =
  match Hashtbl.find_opt t.functions name with
  | Some isolate -> Vjs.Isolate.invoke isolate ~input
  | None -> raise (Unknown_function name)

let invoke t ~name ~input = fst (invoke_timed t ~name ~input)
