type registration = { source : string; entry : string }

type container = {
  mutable last_used : int64;  (** for keep-alive expiry *)
  mutable free_at : int64;    (** sim time when the in-flight request completes *)
  engine : Vjs.Engine.t;
}

type t = {
  clock : Cycles.Clock.t;
  rng : Cycles.Rng.t;
  functions : (string, registration) Hashtbl.t;
  warm : (string, container list ref) Hashtbl.t;
  max_containers : int;
  mutable live_containers : int;
  mutable cold : int;
  mutable warm_count : int;
}

exception Unknown_function of string

(* ~480 ms: docker-style container create + node/v8 boot, the cold-start
   cost the serverless literature reports for unoptimized OpenWhisk *)
let cold_start_cycles = 1_290_000_000

(* ~9 ms: controller -> invoker -> activation proxy round trip *)
let warm_overhead_cycles = 24_000_000

(* 60 s at 2.69 GHz *)
let keepalive_cycles = 161_400_000_000L

let v8_speedup = 5.0

let create ~clock ?(seed = 0x515) ?(max_containers = 32) () =
  {
    clock;
    rng = Cycles.Rng.create ~seed;
    functions = Hashtbl.create 8;
    warm = Hashtbl.create 8;
    max_containers;
    live_containers = 0;
    cold = 0;
    warm_count = 0;
  }

let register t ~name ~source ~entry = Hashtbl.replace t.functions name { source; entry }

let data_value input =
  Vjs.Jsvalue.Arr
    (Vjs.Jsvalue.vec_of_list
       (List.init (Bytes.length input) (fun i ->
            Vjs.Jsvalue.Num (float_of_int (Char.code (Bytes.get input i))))))

let charge t ~pct c = Cycles.Clock.advance_int t.clock (Cycles.Costs.jitter t.rng ~pct c)

let pool t name =
  match Hashtbl.find_opt t.warm name with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.replace t.warm name l;
      l

(* Find a container that is idle at [now] and not expired; reap expired
   ones along the way. *)
let take_warm t name ~now =
  let l = pool t name in
  let expired c = Int64.compare (Int64.sub now c.last_used) keepalive_cycles > 0 in
  let live, dead = List.partition (fun c -> not (expired c)) !l in
  t.live_containers <- t.live_containers - List.length dead;
  l := live;
  List.find_opt (fun c -> Int64.compare c.free_at now <= 0) live

let invoke t ~now ~name ~input =
  let reg =
    match Hashtbl.find_opt t.functions name with
    | Some r -> r
    | None -> raise (Unknown_function name)
  in
  let start = Cycles.Clock.now t.clock in
  let exec_charge c =
    Cycles.Clock.advance_int t.clock (int_of_float (float_of_int c /. v8_speedup))
  in
  let container =
    match take_warm t name ~now with
    | Some c ->
        t.warm_count <- t.warm_count + 1;
        charge t ~pct:0.15 warm_overhead_cycles;
        Vjs.Engine.set_charge c.engine exec_charge;
        Ok c
    | None ->
        (* every concurrent slot beyond the warm pool needs a fresh
           container: this is exactly what bursts expose *)
        t.cold <- t.cold + 1;
        if t.live_containers >= t.max_containers then charge t ~pct:0.2 warm_overhead_cycles;
        charge t ~pct:0.10 cold_start_cycles;
        let engine = Vjs.Engine.create ~charge:exec_charge () in
        (match Vjs.Engine.eval engine reg.source with
        | Ok _ ->
            t.live_containers <- t.live_containers + 1;
            let c = { last_used = now; free_at = now; engine } in
            let l = pool t name in
            l := c :: !l;
            Ok c
        | Error msg -> Error msg)
  in
  match container with
  | Error msg -> (Error msg, Cycles.Clock.elapsed_since t.clock start)
  | Ok c ->
      let result =
        match Vjs.Engine.call c.engine reg.entry [ data_value input ] with
        | Ok v -> Ok (Vjs.Jsvalue.to_string v)
        | Error msg -> Error msg
      in
      let latency = Cycles.Clock.elapsed_since t.clock start in
      c.free_at <- Int64.add now latency;
      c.last_used <- Int64.add now latency;
      (result, latency)

let cold_starts t = t.cold
let warm_hits t = t.warm_count
