type phase = { duration_s : float; clients : int }

let bursty_profile =
  [
    { duration_s = 5.0; clients = 2 };   (* ramp-up *)
    { duration_s = 10.0; clients = 16 }; (* burst 1 *)
    { duration_s = 5.0; clients = 4 };   (* dip *)
    { duration_s = 10.0; clients = 20 }; (* burst 2 *)
    { duration_s = 5.0; clients = 1 };   (* ramp-down *)
  ]

type bucket = { t_s : float; completed : int; rps : float; mean_ms : float; p99_ms : float }

type sample = { at : int64; latency : int64 }

let run ?(freq_ghz = 2.69) ?(workers = 8) ?(think_time_s = 0.05) ~service ~profile () =
  let cps = freq_ghz *. 1e9 in
  let cycles_of_s s = Int64.of_float (s *. cps) in
  let sim = Dessim.Sim.create () in
  let server = Dessim.Sim.Server.create ~workers sim ~service in
  let samples = ref [] in
  let think = cycles_of_s think_time_s in
  (* phase boundaries *)
  let phase_windows =
    let t = ref 0.0 in
    List.map
      (fun p ->
        let start = !t in
        t := !t +. p.duration_s;
        (cycles_of_s start, cycles_of_s !t, p.clients))
      profile
  in
  let total_end =
    List.fold_left (fun acc (_, e, _) -> max acc e) 0L phase_windows
  in
  List.iter
    (fun (start, phase_end, clients) ->
      for _ = 1 to clients do
        let rec client_loop () =
          if Int64.compare (Dessim.Sim.now sim) phase_end < 0 then
            Dessim.Sim.Server.submit server ~on_done:(fun ~wait ~service ->
                samples :=
                  { at = Dessim.Sim.now sim; latency = Int64.add wait service } :: !samples;
                Dessim.Sim.schedule sim ~delay:think client_loop)
        in
        Dessim.Sim.at sim ~time:start client_loop
      done)
    phase_windows;
  Dessim.Sim.run sim;
  (* bucket per second *)
  let seconds = int_of_float (Float.ceil (Int64.to_float total_end /. cps)) in
  let buckets = Array.make (max 1 seconds) [] in
  List.iter
    (fun s ->
      let idx = min (seconds - 1) (int_of_float (Int64.to_float s.at /. cps)) in
      buckets.(idx) <- s :: buckets.(idx))
    !samples;
  Array.to_list
    (Array.mapi
       (fun i bucket ->
         let completed = List.length bucket in
         if completed = 0 then
           { t_s = float_of_int (i + 1); completed = 0; rps = 0.0; mean_ms = 0.0; p99_ms = 0.0 }
         else begin
           let lat_ms =
             Array.of_list
               (List.map (fun s -> Int64.to_float s.latency /. cps *. 1000.0) bucket)
           in
           {
             t_s = float_of_int (i + 1);
             completed;
             rps = float_of_int completed;
             mean_ms = Stats.Descriptive.mean lat_ms;
             p99_ms = Stats.Descriptive.percentile lat_ms 99.0;
           }
         end)
       buckets)
