(** Locust-style closed-loop load generator (Figure 15).

    "We produce a series of concurrent function requests (from multiple
    clients) against both platforms ... This invocation pattern involves
    an initial ramp-up period that leads to two bursts, which then ramp
    down." Clients are closed-loop: each waits for its response, thinks
    briefly, and fires again, so achieved throughput reflects platform
    latency. *)

type phase = { duration_s : float; clients : int }

val bursty_profile : phase list
(** Ramp-up, burst, dip, second burst, ramp-down. *)

type bucket = {
  t_s : float;          (** end of the 1-second bucket *)
  completed : int;
  rps : float;          (** achieved throughput in this bucket *)
  mean_ms : float;      (** mean response latency (0 when idle) *)
  p99_ms : float;
}

val run :
  ?freq_ghz:float ->
  ?workers:int ->
  ?think_time_s:float ->
  service:(now:int64 -> int64) ->
  profile:phase list ->
  unit ->
  bucket list
(** Simulate the profile against a [workers]-wide FIFO server whose
    per-request duration comes from [service ~now] (cycles; [now] is the
    sim time the request starts service, for keep-alive decisions).
    Returns one-second buckets covering the whole run. *)
