lib/cycles/costs.mli: Rng
