lib/cycles/clock.mli:
