lib/cycles/rng.ml: Float Int64
