lib/cycles/rng.mli:
