lib/cycles/clock.ml: Int64
