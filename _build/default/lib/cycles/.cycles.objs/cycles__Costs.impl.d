lib/cycles/costs.ml: Rng
