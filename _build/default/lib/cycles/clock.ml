type t = { mutable cycles : int64; freq_ghz : float }

let create ?(freq_ghz = 2.69) () = { cycles = 0L; freq_ghz }

let now t = t.cycles

let advance t c =
  assert (Int64.compare c 0L >= 0);
  t.cycles <- Int64.add t.cycles c

let advance_int t c = advance t (Int64.of_int c)

let freq_ghz t = t.freq_ghz

let to_ns t c = Int64.to_float c /. t.freq_ghz

let to_us t c = to_ns t c /. 1e3

let to_ms t c = to_ns t c /. 1e6

let of_us t us = Int64.of_float (us *. t.freq_ghz *. 1e3)

let elapsed_since t start = Int64.sub t.cycles start
