(* xoshiro256** with splitmix64 seeding: fast, high quality, and easy to
   reproduce across platforms since we avoid the stdlib Random state. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let int64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (int64 t) in
  create ~seed

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let float t =
  let v = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float v *. (1.0 /. 9007199254740992.0)

let gaussian t =
  (* Box-Muller; guard against log 0. *)
  let u1 = max (float t) 1e-12 in
  let u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let lognormal t ~mu ~sigma = exp (mu +. (sigma *. gaussian t))
