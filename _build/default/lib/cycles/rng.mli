(** Deterministic pseudo-random numbers for reproducible simulation.

    All stochastic behaviour in the simulator (measurement jitter, scheduler
    noise) flows through an explicit generator so that a fixed seed yields a
    bit-identical run. The generator is splittable: independent subsystems
    take their own stream derived from a parent, which keeps experiments
    insensitive to the order in which unrelated components draw numbers. *)

type t

val create : seed:int -> t
(** [create ~seed] builds a generator. Two generators with equal seeds
    produce identical streams. *)

val split : t -> t
(** [split t] derives an independent child stream and perturbs [t]. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val gaussian : t -> float
(** Standard normal deviate (Box-Muller). *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normal deviate; used for long-tailed latency noise. *)
