(** Virtual cycle clock.

    Every simulated operation charges cycles against a clock; experiments
    read it like [rdtsc]. The clock frequency defaults to the paper's
    {i tinker} testbed (AMD EPYC 7281 @ 2.69 GHz) so reported microsecond
    figures are directly comparable. *)

type t

val create : ?freq_ghz:float -> unit -> t
(** Fresh clock at cycle 0. [freq_ghz] defaults to 2.69. *)

val now : t -> int64
(** Current cycle count. *)

val advance : t -> int64 -> unit
(** [advance t c] moves time forward by [c] cycles. [c] must be >= 0. *)

val advance_int : t -> int -> unit
(** Convenience wrapper over {!advance}. *)

val freq_ghz : t -> float

val to_ns : t -> int64 -> float
(** Convert a cycle count to nanoseconds at this clock's frequency. *)

val to_us : t -> int64 -> float
val to_ms : t -> int64 -> float

val of_us : t -> float -> int64
(** Cycles corresponding to the given duration in microseconds. *)

val elapsed_since : t -> int64 -> int64
(** [elapsed_since t start] is [now t - start]. *)
