lib/dessim/sim.mli:
