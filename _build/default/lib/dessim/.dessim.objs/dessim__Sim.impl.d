lib/dessim/sim.ml: Array Int64 Queue
