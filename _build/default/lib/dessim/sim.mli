(** Discrete-event simulator.

    Drives the throughput experiments (Figures 13 and 15): request
    arrivals, queueing at servers, and load profiles run on a virtual
    timeline measured in cycles. Service durations are obtained by
    actually executing the work (e.g. a virtine invocation) and taking
    the elapsed cycles on the Wasp clock, so the queueing model and the
    execution model stay consistent. *)

type t

val create : unit -> t
(** A fresh timeline at time 0. *)

val now : t -> int64
(** Current virtual time (cycles). *)

val schedule : t -> delay:int64 -> (unit -> unit) -> unit
(** Run a callback [delay] cycles from now. [delay] must be >= 0.
    Callbacks may schedule further events. Events at equal times fire in
    scheduling order. *)

val at : t -> time:int64 -> (unit -> unit) -> unit
(** Absolute-time variant; times in the past fire immediately (at now). *)

val run : ?until:int64 -> t -> unit
(** Process events in time order until the queue is empty or the clock
    would pass [until]. *)

val pending : t -> int

(** {1 Single-server FIFO queue}

    Models the paper's single-threaded HTTP server: arrivals queue, the
    server executes one request at a time, and each service duration is
    measured by running the real handler. *)

module Server : sig
  type server

  val create : ?workers:int -> t -> service:(now:int64 -> int64) -> server
  (** [service ~now] performs one request at sim time [now] and returns
      its duration in cycles (e.g. elapsed Wasp-clock cycles of a virtine
      invocation). [workers] (default 1) sets how many requests are in
      service concurrently (a shared FIFO feeds all workers). *)

  val submit : server -> on_done:(wait:int64 -> service:int64 -> unit) -> unit
  (** Enqueue a request at the current sim time; [on_done] receives the
      queueing delay and service duration when it completes. *)

  val completed : server -> int
  val busy_cycles : server -> int64
end
