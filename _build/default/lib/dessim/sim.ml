(* binary heap keyed by (time, sequence) *)

type event = { time : int64; seq : int; action : unit -> unit }

type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : int64;
  mutable next_seq : int;
}

let create () =
  {
    heap = Array.make 64 { time = 0L; seq = 0; action = (fun () -> ()) };
    size = 0;
    clock = 0L;
    next_seq = 0;
  }

let now t = t.clock

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && earlier t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && earlier t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ev =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) ev in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some top
  end

let peek t = if t.size = 0 then None else Some t.heap.(0)

let schedule t ~delay action =
  if Int64.compare delay 0L < 0 then invalid_arg "Sim.schedule: negative delay";
  let ev = { time = Int64.add t.clock delay; seq = t.next_seq; action } in
  t.next_seq <- t.next_seq + 1;
  push t ev

let at t ~time action =
  let time = if Int64.compare time t.clock < 0 then t.clock else time in
  let ev = { time; seq = t.next_seq; action } in
  t.next_seq <- t.next_seq + 1;
  push t ev

let run ?until t =
  let continue = ref true in
  while !continue do
    match peek t with
    | None -> continue := false
    | Some ev -> (
        match until with
        | Some limit when Int64.compare ev.time limit > 0 -> continue := false
        | Some _ | None ->
            ignore (pop t);
            t.clock <- ev.time;
            ev.action ())
  done;
  match until with
  | Some limit when Int64.compare t.clock limit < 0 && t.size = 0 -> t.clock <- limit
  | Some limit when t.size > 0 && Int64.compare t.clock limit < 0 -> t.clock <- limit
  | _ -> ()

let pending t = t.size

module Server = struct
  type request = { enqueued : int64; on_done : wait:int64 -> service:int64 -> unit }

  type server = {
    sim : t;
    service : now:int64 -> int64;
    queue : request Queue.t;
    workers : int;
    mutable busy_count : int;
    mutable done_count : int;
    mutable busy_total : int64;
  }

  let create ?(workers = 1) sim ~service =
    if workers < 1 then invalid_arg "Sim.Server.create: workers must be >= 1";
    {
      sim;
      service;
      queue = Queue.create ();
      workers;
      busy_count = 0;
      done_count = 0;
      busy_total = 0L;
    }

  let rec start_next s =
    if s.busy_count < s.workers then begin
      match Queue.take_opt s.queue with
      | None -> ()
      | Some req ->
          s.busy_count <- s.busy_count + 1;
          let wait = Int64.sub (now s.sim) req.enqueued in
          let duration = s.service ~now:(now s.sim) in
          s.busy_total <- Int64.add s.busy_total duration;
          schedule s.sim ~delay:duration (fun () ->
              s.done_count <- s.done_count + 1;
              s.busy_count <- s.busy_count - 1;
              req.on_done ~wait ~service:duration;
              start_next s);
          start_next s
    end

  let submit s ~on_done =
    Queue.add { enqueued = now s.sim; on_done } s.queue;
    start_next s

  let completed s = s.done_count
  let busy_cycles s = s.busy_total
end
