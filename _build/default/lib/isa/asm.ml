type target = Lbl of string | Abs of int

type item =
  | Label of string
  | Insn of sym_insn
  | Byte of int list
  | Quad of int64 list
  | Zero of int
  | Str of string

and sym_insn =
  | SHlt
  | SNop
  | SMov of Instr.reg * sym_operand
  | SBin of Instr.binop * Instr.reg * sym_operand
  | SNeg of Instr.reg
  | SNot of Instr.reg
  | SCmp of Instr.reg * sym_operand
  | SJmp of target
  | SJcc of Instr.cond * target
  | SCall of target
  | SCallr of Instr.reg
  | SRet
  | SPush of sym_operand
  | SPop of Instr.reg
  | SLoad of Instr.width * Instr.reg * Instr.reg * int
  | SStore of Instr.width * Instr.reg * int * sym_operand
  | SLea of Instr.reg * Instr.reg * int
  | SOut of int * sym_operand
  | SIn of Instr.reg * int
  | SRdtsc of Instr.reg

and sym_operand = OReg of Instr.reg | OImm of int64 | OLbl of string

exception Asm_error of string

type program = {
  code : bytes;
  origin : int;
  entry : int;
  symbols : (string * int) list;
}

let fail fmt = Printf.ksprintf (fun s -> raise (Asm_error s)) fmt

(* Sizes are computed on a worst-case placeholder resolution: label operands
   become 64-bit immediates, so size does not depend on the final address. *)
let placeholder_operand : sym_operand -> Instr.operand = function
  | OReg r -> Reg r
  | OImm i -> Imm i
  | OLbl _ -> Imm 0L

let resolve_insn lookup_label : sym_insn -> Instr.t =
  let operand : sym_operand -> Instr.operand = function
    | OReg r -> Reg r
    | OImm i -> Imm i
    | OLbl l -> Imm (Int64.of_int (lookup_label l))
  in
  let tgt = function Lbl l -> lookup_label l | Abs a -> a in
  function
  | SHlt -> Hlt
  | SNop -> Nop
  | SMov (r, s) -> Mov (r, operand s)
  | SBin (op, r, s) -> Bin (op, r, operand s)
  | SNeg r -> Neg r
  | SNot r -> Not r
  | SCmp (r, s) -> Cmp (r, operand s)
  | SJmp t -> Jmp (tgt t)
  | SJcc (c, t) -> Jcc (c, tgt t)
  | SCall t -> Call (tgt t)
  | SCallr r -> Callr r
  | SRet -> Ret
  | SPush s -> Push (operand s)
  | SPop r -> Pop r
  | SLoad (w, rd, rb, d) -> Load (w, rd, rb, d)
  | SStore (w, rb, d, s) -> Store (w, rb, d, operand s)
  | SLea (rd, rb, d) -> Lea (rd, rb, d)
  | SOut (p, s) -> Out (p, operand s)
  | SIn (r, p) -> In (r, p)
  | SRdtsc r -> Rdtsc r

(* Replace label operands with dummies of identical encoded size. *)
let placeholder : sym_insn -> sym_insn = function
  | SMov (r, OLbl _) -> SMov (r, OImm 0L)
  | SBin (op, r, OLbl _) -> SBin (op, r, OImm 0L)
  | SCmp (r, OLbl _) -> SCmp (r, OImm 0L)
  | SPush (OLbl _) -> SPush (OImm 0L)
  | SStore (w, rb, d, OLbl _) -> SStore (w, rb, d, OImm 0L)
  | SOut (p, OLbl _) -> SOut (p, OImm 0L)
  | i -> i

let item_size = function
  | Label _ -> 0
  | Insn i -> Encoding.encoded_size (resolve_insn (fun _ -> 0) (placeholder i))
  | Byte bs -> List.length bs
  | Quad qs -> 8 * List.length qs
  | Zero n -> n
  | Str s -> String.length s + 1

let assemble ?(origin = 0x8000) ?entry items =
  (* pass 1: addresses *)
  let symbols = Hashtbl.create 16 in
  let addr = ref origin in
  List.iter
    (fun item ->
      (match item with
      | Label l ->
          if Hashtbl.mem symbols l then fail "duplicate label %s" l;
          Hashtbl.replace symbols l !addr
      | Insn _ | Byte _ | Quad _ | Zero _ | Str _ -> ());
      addr := !addr + item_size item)
    items;
  let lookup_label l =
    match Hashtbl.find_opt symbols l with
    | Some a -> a
    | None -> fail "undefined label %s" l
  in
  (* pass 2: emit *)
  let buf = Buffer.create 256 in
  List.iter
    (fun item ->
      match item with
      | Label _ -> ()
      | Insn i -> Encoding.encode buf (resolve_insn lookup_label i)
      | Byte bs -> List.iter (fun b -> Buffer.add_char buf (Char.chr (b land 0xFF))) bs
      | Quad qs ->
          List.iter
            (fun q ->
              for k = 0 to 7 do
                Buffer.add_char buf
                  (Char.chr (Int64.to_int (Int64.shift_right_logical q (8 * k)) land 0xFF))
              done)
            qs
      | Zero n -> Buffer.add_bytes buf (Bytes.make n '\000')
      | Str s ->
          Buffer.add_string buf s;
          Buffer.add_char buf '\000')
    items;
  let entry =
    match entry with Some l -> lookup_label l | None -> origin
  in
  {
    code = Buffer.to_bytes buf;
    origin;
    entry;
    symbols = Hashtbl.fold (fun k v acc -> (k, v) :: acc) symbols [];
  }

let lookup p l =
  match List.assoc_opt l p.symbols with Some a -> a | None -> raise Not_found

(* ------------------------------------------------------------------ *)
(* Textual parser                                                      *)
(* ------------------------------------------------------------------ *)

let strip_comment line =
  (* ';' starts a comment unless inside a string literal. *)
  let in_str = ref false in
  let cut = ref (String.length line) in
  (try
     String.iteri
       (fun i c ->
         if c = '"' then in_str := not !in_str
         else if c = ';' && not !in_str then begin
           cut := i;
           raise Exit
         end)
       line
   with Exit -> ());
  String.sub line 0 !cut

let tokenize_operands s =
  (* split on commas at top level (strings contain no commas in our usage) *)
  String.split_on_char ',' s |> List.map String.trim |> List.filter (fun x -> x <> "")

let parse_int lineno s =
  let s = String.trim s in
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail "line %d: expected integer, got %S" lineno s

let parse_reg lineno s =
  match Instr.reg_of_name (String.trim s) with
  | Some r -> r
  | None -> fail "line %d: expected register, got %S" lineno s

let parse_operand lineno s : sym_operand =
  let s = String.trim s in
  match Instr.reg_of_name s with
  | Some r -> OReg r
  | None -> (
      match Int64.of_string_opt s with
      | Some i -> OImm i
      | None ->
          if s <> "" && (('a' <= s.[0] && s.[0] <= 'z') || ('A' <= s.[0] && s.[0] <= 'Z') || s.[0] = '_' || s.[0] = '.')
          then OLbl s
          else fail "line %d: bad operand %S" lineno s)

let parse_target lineno s : target =
  match parse_operand lineno s with
  | OImm i -> Abs (Int64.to_int i)
  | OLbl l -> Lbl l
  | OReg _ -> fail "line %d: branch target cannot be a register" lineno

(* "[rN+disp]" or "[rN-disp]" or "[rN]" *)
let parse_memref lineno s =
  let s = String.trim s in
  let n = String.length s in
  if n < 3 || s.[0] <> '[' || s.[n - 1] <> ']' then fail "line %d: bad memory operand %S" lineno s;
  let inner = String.sub s 1 (n - 2) in
  let split_at idx =
    let base = String.sub inner 0 idx in
    let disp = String.sub inner idx (String.length inner - idx) in
    (parse_reg lineno base, parse_int lineno disp)
  in
  match String.index_opt inner '+' with
  | Some i -> split_at i
  | None -> (
      match String.index_opt inner '-' with
      | Some i -> split_at i
      | None -> (parse_reg lineno inner, 0))

let binop_of_mnemonic = function
  | "add" -> Some Instr.Add
  | "sub" -> Some Instr.Sub
  | "mul" -> Some Instr.Mul
  | "div" -> Some Instr.Div
  | "rem" -> Some Instr.Rem
  | "and" -> Some Instr.And
  | "or" -> Some Instr.Or
  | "xor" -> Some Instr.Xor
  | "shl" -> Some Instr.Shl
  | "shr" -> Some Instr.Shr
  | "sar" -> Some Instr.Sar
  | _ -> None

let cond_of_mnemonic = function
  | "jeq" -> Some Instr.Eq
  | "jne" -> Some Instr.Ne
  | "jlt" -> Some Instr.Lt
  | "jle" -> Some Instr.Le
  | "jgt" -> Some Instr.Gt
  | "jge" -> Some Instr.Ge
  | "jult" -> Some Instr.Ult
  | "jule" -> Some Instr.Ule
  | "jugt" -> Some Instr.Ugt
  | "juge" -> Some Instr.Uge
  | _ -> None

let width_of_suffix lineno = function
  | "8" -> Instr.W8
  | "16" -> Instr.W16
  | "32" -> Instr.W32
  | "64" -> Instr.W64
  | s -> fail "line %d: bad width suffix %S" lineno s

let parse_string_literal lineno s =
  let s = String.trim s in
  let n = String.length s in
  if n < 2 || s.[0] <> '"' || s.[n - 1] <> '"' then fail "line %d: expected string literal" lineno;
  let inner = String.sub s 1 (n - 2) in
  let buf = Buffer.create (String.length inner) in
  let i = ref 0 in
  while !i < String.length inner do
    let c = inner.[!i] in
    if c = '\\' && !i + 1 < String.length inner then begin
      (match inner.[!i + 1] with
      | 'n' -> Buffer.add_char buf '\n'
      | 't' -> Buffer.add_char buf '\t'
      | 'r' -> Buffer.add_char buf '\r'
      | '0' -> Buffer.add_char buf '\000'
      | '\\' -> Buffer.add_char buf '\\'
      | '"' -> Buffer.add_char buf '"'
      | other -> fail "line %d: bad escape \\%c" lineno other);
      i := !i + 2
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.contents buf

let parse_line lineno line : item list =
  let line = String.trim (strip_comment line) in
  if line = "" then []
  else if String.length line > 1 && line.[String.length line - 1] = ':' then
    [ Label (String.sub line 0 (String.length line - 1)) ]
  else begin
    let mnemonic, rest =
      match String.index_opt line ' ' with
      | Some i ->
          (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))
      | None -> (line, "")
    in
    let mnemonic = String.lowercase_ascii mnemonic in
    let ops () = tokenize_operands rest in
    let two () =
      match ops () with
      | [ a; b ] -> (a, b)
      | _ -> fail "line %d: %s expects two operands" lineno mnemonic
    in
    let one () =
      match ops () with
      | [ a ] -> a
      | _ -> fail "line %d: %s expects one operand" lineno mnemonic
    in
    let none () =
      match ops () with
      | [] -> ()
      | _ -> fail "line %d: %s expects no operands" lineno mnemonic
    in
    match mnemonic with
    | "hlt" ->
        none ();
        [ Insn SHlt ]
    | "nop" ->
        none ();
        [ Insn SNop ]
    | "ret" ->
        none ();
        [ Insn SRet ]
    | "mov" ->
        let a, b = two () in
        [ Insn (SMov (parse_reg lineno a, parse_operand lineno b)) ]
    | "cmp" ->
        let a, b = two () in
        [ Insn (SCmp (parse_reg lineno a, parse_operand lineno b)) ]
    | "neg" -> [ Insn (SNeg (parse_reg lineno (one ()))) ]
    | "not" -> [ Insn (SNot (parse_reg lineno (one ()))) ]
    | "jmp" -> [ Insn (SJmp (parse_target lineno (one ()))) ]
    | "call" -> [ Insn (SCall (parse_target lineno (one ()))) ]
    | "callr" -> [ Insn (SCallr (parse_reg lineno (one ()))) ]
    | "push" -> [ Insn (SPush (parse_operand lineno (one ()))) ]
    | "pop" -> [ Insn (SPop (parse_reg lineno (one ()))) ]
    | "rdtsc" -> [ Insn (SRdtsc (parse_reg lineno (one ()))) ]
    | "out" ->
        let a, b = two () in
        [ Insn (SOut (parse_int lineno a, parse_operand lineno b)) ]
    | "in" ->
        let a, b = two () in
        [ Insn (SIn (parse_reg lineno a, parse_int lineno b)) ]
    | "lea" ->
        let a, b = two () in
        let rb, d = parse_memref lineno b in
        [ Insn (SLea (parse_reg lineno a, rb, d)) ]
    | ".byte" -> [ Byte (List.map (parse_int lineno) (ops ())) ]
    | ".quad" ->
        [ Quad (List.map (fun s -> Int64.of_string (String.trim s)) (ops ())) ]
    | ".zero" -> [ Zero (parse_int lineno (one ())) ]
    | ".string" -> [ Str (parse_string_literal lineno rest) ]
    | _ -> (
        match binop_of_mnemonic mnemonic with
        | Some op ->
            let a, b = two () in
            [ Insn (SBin (op, parse_reg lineno a, parse_operand lineno b)) ]
        | None -> (
            match cond_of_mnemonic mnemonic with
            | Some c -> [ Insn (SJcc (c, parse_target lineno (one ()))) ]
            | None ->
                if String.length mnemonic > 2 && String.sub mnemonic 0 2 = "ld" then begin
                  let w = width_of_suffix lineno (String.sub mnemonic 2 (String.length mnemonic - 2)) in
                  let a, b = two () in
                  let rb, d = parse_memref lineno b in
                  [ Insn (SLoad (w, parse_reg lineno a, rb, d)) ]
                end
                else if String.length mnemonic > 2 && String.sub mnemonic 0 2 = "st" then begin
                  let w = width_of_suffix lineno (String.sub mnemonic 2 (String.length mnemonic - 2)) in
                  let a, b = two () in
                  let rb, d = parse_memref lineno a in
                  [ Insn (SStore (w, rb, d, parse_operand lineno b)) ]
                end
                else fail "line %d: unknown mnemonic %S" lineno mnemonic))
  end

let parse text =
  let lines = String.split_on_char '\n' text in
  List.concat (List.mapi (fun i line -> parse_line (i + 1) line) lines)

let assemble_string ?origin ?entry text = assemble ?origin ?entry (parse text)
