type reg = int

let num_regs = 16
let sp = 15
let fp = 13

let reg_name r = Printf.sprintf "r%d" r

let reg_of_name s =
  let n = String.length s in
  if n >= 2 && n <= 3 && s.[0] = 'r' then
    match int_of_string_opt (String.sub s 1 (n - 1)) with
    | Some r when r >= 0 && r < num_regs -> Some r
    | Some _ | None -> None
  else None

type operand = Reg of reg | Imm of int64

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sar

type cond = Eq | Ne | Lt | Le | Gt | Ge | Ult | Ule | Ugt | Uge

type width = W8 | W16 | W32 | W64

let bytes_of_width = function W8 -> 1 | W16 -> 2 | W32 -> 4 | W64 -> 8

type t =
  | Hlt
  | Nop
  | Mov of reg * operand
  | Bin of binop * reg * operand
  | Neg of reg
  | Not of reg
  | Cmp of reg * operand
  | Jmp of int
  | Jcc of cond * int
  | Call of int
  | Callr of reg
  | Ret
  | Push of operand
  | Pop of reg
  | Load of width * reg * reg * int
  | Store of width * reg * int * operand
  | Lea of reg * reg * int
  | Out of int * operand
  | In of reg * int
  | Rdtsc of reg

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Sar -> "sar"

let cond_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Ult -> "ult"
  | Ule -> "ule"
  | Ugt -> "ugt"
  | Uge -> "uge"

let width_suffix = function W8 -> "8" | W16 -> "16" | W32 -> "32" | W64 -> "64"

let pp_operand ppf = function
  | Reg r -> Format.pp_print_string ppf (reg_name r)
  | Imm i -> Format.fprintf ppf "%Ld" i

let pp ppf = function
  | Hlt -> Format.pp_print_string ppf "hlt"
  | Nop -> Format.pp_print_string ppf "nop"
  | Mov (rd, src) -> Format.fprintf ppf "mov %s, %a" (reg_name rd) pp_operand src
  | Bin (op, rd, src) ->
      Format.fprintf ppf "%s %s, %a" (binop_name op) (reg_name rd) pp_operand src
  | Neg r -> Format.fprintf ppf "neg %s" (reg_name r)
  | Not r -> Format.fprintf ppf "not %s" (reg_name r)
  | Cmp (r, src) -> Format.fprintf ppf "cmp %s, %a" (reg_name r) pp_operand src
  | Jmp a -> Format.fprintf ppf "jmp 0x%x" a
  | Jcc (c, a) -> Format.fprintf ppf "j%s 0x%x" (cond_name c) a
  | Call a -> Format.fprintf ppf "call 0x%x" a
  | Callr r -> Format.fprintf ppf "callr %s" (reg_name r)
  | Ret -> Format.pp_print_string ppf "ret"
  | Push src -> Format.fprintf ppf "push %a" pp_operand src
  | Pop r -> Format.fprintf ppf "pop %s" (reg_name r)
  | Load (w, rd, rb, d) ->
      Format.fprintf ppf "ld%s %s, [%s%+d]" (width_suffix w) (reg_name rd) (reg_name rb) d
  | Store (w, rb, d, src) ->
      Format.fprintf ppf "st%s [%s%+d], %a" (width_suffix w) (reg_name rb) d pp_operand src
  | Lea (rd, rb, d) -> Format.fprintf ppf "lea %s, [%s%+d]" (reg_name rd) (reg_name rb) d
  | Out (p, src) -> Format.fprintf ppf "out 0x%x, %a" p pp_operand src
  | In (r, p) -> Format.fprintf ppf "in %s, 0x%x" (reg_name r) p
  | Rdtsc r -> Format.fprintf ppf "rdtsc %s" (reg_name r)

let to_string i = Format.asprintf "%a" pp i

let equal (a : t) (b : t) = a = b

let cost = function
  | Hlt -> 1
  | Nop -> 1
  | Mov _ | Neg _ | Not _ | Cmp _ -> Cycles.Costs.alu
  | Bin ((Add | Sub | And | Or | Xor | Shl | Shr | Sar), _, _) -> Cycles.Costs.alu
  | Bin (Mul, _, _) -> Cycles.Costs.mul
  | Bin ((Div | Rem), _, _) -> Cycles.Costs.div
  | Jmp _ | Jcc _ -> Cycles.Costs.branch
  | Call _ | Callr _ | Ret -> Cycles.Costs.call + Cycles.Costs.mem
  | Push _ | Pop _ -> Cycles.Costs.alu + Cycles.Costs.mem
  | Load _ | Store _ -> Cycles.Costs.mem
  | Lea _ -> Cycles.Costs.alu
  | Out _ | In _ -> Cycles.Costs.hypercall_guest_side
  | Rdtsc _ -> Cycles.Costs.rdtsc
