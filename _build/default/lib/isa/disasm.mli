(** Disassembler for vx images.

    Renders an encoded blob back to readable assembly with addresses,
    resolving branch targets to labels where a symbol table is available
    (the objdump of this toolchain). *)

type line = {
  addr : int;
  size : int;
  instr : Instr.t option;  (** [None] for undecodable bytes *)
  bytes : string;          (** raw bytes, hex *)
}

val disassemble : ?origin:int -> bytes -> line list
(** Linear sweep from [origin] (default 0x8000). On an undecodable byte,
    emits a one-byte data line and resynchronizes at the next byte. *)

val render : ?symbols:(string * int) list -> line list -> string
(** Pretty text: addresses, bytes, mnemonics; label definitions
    interleaved and branch targets annotated from [symbols]. *)

val of_program : Asm.program -> string
(** Disassemble an assembled program with its own symbol table. *)
