exception Decode_error of { addr : int; msg : string }

let op_hlt = 0x00
let op_nop = 0x01
let op_mov = 0x02
let op_bin_base = 0x10 (* + binop index, Add..Sar = 0x10..0x1A *)
let op_neg = 0x1b
let op_not = 0x1c
let op_cmp = 0x1d
let op_jmp = 0x20
let op_jcc = 0x21
let op_call = 0x22
let op_callr = 0x23
let op_ret = 0x24
let op_push = 0x25
let op_pop = 0x26
let op_load_base = 0x30 (* + width index *)
let op_store_base = 0x34
let op_lea = 0x38
let op_out = 0x40
let op_in = 0x41
let op_rdtsc = 0x42

let binop_index : Instr.binop -> int = function
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Div -> 3
  | Rem -> 4
  | And -> 5
  | Or -> 6
  | Xor -> 7
  | Shl -> 8
  | Shr -> 9
  | Sar -> 10

let binop_of_index : int -> Instr.binop option = function
  | 0 -> Some Add
  | 1 -> Some Sub
  | 2 -> Some Mul
  | 3 -> Some Div
  | 4 -> Some Rem
  | 5 -> Some And
  | 6 -> Some Or
  | 7 -> Some Xor
  | 8 -> Some Shl
  | 9 -> Some Shr
  | 10 -> Some Sar
  | _ -> None

let cond_index : Instr.cond -> int = function
  | Eq -> 0
  | Ne -> 1
  | Lt -> 2
  | Le -> 3
  | Gt -> 4
  | Ge -> 5
  | Ult -> 6
  | Ule -> 7
  | Ugt -> 8
  | Uge -> 9

let cond_of_index : int -> Instr.cond option = function
  | 0 -> Some Eq
  | 1 -> Some Ne
  | 2 -> Some Lt
  | 3 -> Some Le
  | 4 -> Some Gt
  | 5 -> Some Ge
  | 6 -> Some Ult
  | 7 -> Some Ule
  | 8 -> Some Ugt
  | 9 -> Some Uge
  | _ -> None

let width_index : Instr.width -> int = function W8 -> 0 | W16 -> 1 | W32 -> 2 | W64 -> 3

let width_of_index : int -> Instr.width option = function
  | 0 -> Some W8
  | 1 -> Some W16
  | 2 -> Some W32
  | 3 -> Some W64
  | _ -> None

let add_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let add_i32 buf v =
  add_u8 buf v;
  add_u8 buf (v asr 8);
  add_u8 buf (v asr 16);
  add_u8 buf (v asr 24)

let add_i64 buf v =
  for i = 0 to 7 do
    add_u8 buf (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done

let add_operand buf : Instr.operand -> unit = function
  | Reg r -> add_u8 buf r
  | Imm i ->
      add_u8 buf 0x80;
      add_i64 buf i

let operand_size : Instr.operand -> int = function Reg _ -> 1 | Imm _ -> 9

let encode buf : Instr.t -> unit = function
  | Hlt -> add_u8 buf op_hlt
  | Nop -> add_u8 buf op_nop
  | Mov (rd, src) ->
      add_u8 buf op_mov;
      add_u8 buf rd;
      add_operand buf src
  | Bin (op, rd, src) ->
      add_u8 buf (op_bin_base + binop_index op);
      add_u8 buf rd;
      add_operand buf src
  | Neg r ->
      add_u8 buf op_neg;
      add_u8 buf r
  | Not r ->
      add_u8 buf op_not;
      add_u8 buf r
  | Cmp (r, src) ->
      add_u8 buf op_cmp;
      add_u8 buf r;
      add_operand buf src
  | Jmp a ->
      add_u8 buf op_jmp;
      add_i32 buf a
  | Jcc (c, a) ->
      add_u8 buf op_jcc;
      add_u8 buf (cond_index c);
      add_i32 buf a
  | Call a ->
      add_u8 buf op_call;
      add_i32 buf a
  | Callr r ->
      add_u8 buf op_callr;
      add_u8 buf r
  | Ret -> add_u8 buf op_ret
  | Push src ->
      add_u8 buf op_push;
      add_operand buf src
  | Pop r ->
      add_u8 buf op_pop;
      add_u8 buf r
  | Load (w, rd, rb, d) ->
      add_u8 buf (op_load_base + width_index w);
      add_u8 buf rd;
      add_u8 buf rb;
      add_i32 buf d
  | Store (w, rb, d, src) ->
      add_u8 buf (op_store_base + width_index w);
      add_u8 buf rb;
      add_i32 buf d;
      add_operand buf src
  | Lea (rd, rb, d) ->
      add_u8 buf op_lea;
      add_u8 buf rd;
      add_u8 buf rb;
      add_i32 buf d
  | Out (p, src) ->
      add_u8 buf op_out;
      add_u8 buf p;
      add_operand buf src
  | In (r, p) ->
      add_u8 buf op_in;
      add_u8 buf r;
      add_u8 buf p
  | Rdtsc r ->
      add_u8 buf op_rdtsc;
      add_u8 buf r

let encoded_size : Instr.t -> int = function
  | Hlt | Nop | Ret -> 1
  | Neg _ | Not _ | Callr _ | Pop _ | Rdtsc _ -> 2
  | Mov (_, src) | Bin (_, _, src) | Cmp (_, src) -> 2 + operand_size src
  | Jmp _ | Call _ -> 5
  | Jcc _ -> 6
  | Push src -> 1 + operand_size src
  | Load _ | Lea _ -> 7
  | Store (_, _, _, src) -> 6 + operand_size src
  | Out (_, src) -> 2 + operand_size src
  | In _ -> 3

let decode read_byte addr =
  let fail msg = raise (Decode_error { addr; msg }) in
  let pos = ref addr in
  let u8 () =
    let v = read_byte !pos in
    incr pos;
    v
  in
  let reg () =
    let r = u8 () in
    if r >= Instr.num_regs then fail (Printf.sprintf "bad register %d" r);
    r
  in
  let i32 () =
    let b0 = u8 () and b1 = u8 () and b2 = u8 () and b3 = u8 () in
    let v = b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24) in
    (* sign-extend from 32 bits *)
    (v lsl 32) asr 32
  in
  let i64 () =
    let v = ref 0L in
    for i = 0 to 7 do
      v := Int64.logor !v (Int64.shift_left (Int64.of_int (u8 ())) (8 * i))
    done;
    !v
  in
  let operand () : Instr.operand =
    let b = u8 () in
    if b land 0x80 <> 0 then Imm (i64 ())
    else if b < Instr.num_regs then Reg b
    else fail (Printf.sprintf "bad operand byte 0x%x" b)
  in
  let op = u8 () in
  let instr : Instr.t =
    if op = op_hlt then Hlt
    else if op = op_nop then Nop
    else if op = op_mov then
      let rd = reg () in
      Mov (rd, operand ())
    else if op >= op_bin_base && op <= op_bin_base + 10 then begin
      match binop_of_index (op - op_bin_base) with
      | Some b ->
          let rd = reg () in
          Bin (b, rd, operand ())
      | None -> fail "bad binop"
    end
    else if op = op_neg then Neg (reg ())
    else if op = op_not then Not (reg ())
    else if op = op_cmp then
      let r = reg () in
      Cmp (r, operand ())
    else if op = op_jmp then Jmp (i32 ())
    else if op = op_jcc then begin
      match cond_of_index (u8 ()) with
      | Some c -> Jcc (c, i32 ())
      | None -> fail "bad condition code"
    end
    else if op = op_call then Call (i32 ())
    else if op = op_callr then Callr (reg ())
    else if op = op_ret then Ret
    else if op = op_push then Push (operand ())
    else if op = op_pop then Pop (reg ())
    else if op >= op_load_base && op < op_load_base + 4 then begin
      match width_of_index (op - op_load_base) with
      | Some w ->
          let rd = reg () in
          let rb = reg () in
          Load (w, rd, rb, i32 ())
      | None -> fail "bad width"
    end
    else if op >= op_store_base && op < op_store_base + 4 then begin
      match width_of_index (op - op_store_base) with
      | Some w ->
          let rb = reg () in
          let d = i32 () in
          Store (w, rb, d, operand ())
      | None -> fail "bad width"
    end
    else if op = op_lea then begin
      let rd = reg () in
      let rb = reg () in
      Lea (rd, rb, i32 ())
    end
    else if op = op_out then begin
      let p = u8 () in
      Out (p, operand ())
    end
    else if op = op_in then begin
      let r = reg () in
      In (r, u8 ())
    end
    else if op = op_rdtsc then Rdtsc (reg ())
    else fail (Printf.sprintf "illegal opcode 0x%02x" op)
  in
  (instr, !pos - addr)

let encode_program instrs =
  let buf = Buffer.create 256 in
  List.iter (encode buf) instrs;
  Buffer.to_bytes buf

let decode_program blob =
  let len = Bytes.length blob in
  let read_byte a =
    if a < 0 || a >= len then raise (Decode_error { addr = a; msg = "out of bounds" })
    else Char.code (Bytes.get blob a)
  in
  let rec go addr acc =
    if addr >= len then List.rev acc
    else begin
      let i, sz = decode read_byte addr in
      go (addr + sz) (i :: acc)
    end
  in
  go 0 []
