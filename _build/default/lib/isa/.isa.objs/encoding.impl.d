lib/isa/encoding.ml: Buffer Bytes Char Instr Int64 List Printf
