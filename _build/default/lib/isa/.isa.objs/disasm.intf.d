lib/isa/disasm.mli: Asm Instr
