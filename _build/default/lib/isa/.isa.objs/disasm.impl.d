lib/isa/disasm.ml: Asm Buffer Bytes Char Encoding Instr List Printf String
