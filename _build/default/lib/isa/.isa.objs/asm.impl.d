lib/isa/asm.ml: Buffer Bytes Char Encoding Hashtbl Instr Int64 List Printf String
