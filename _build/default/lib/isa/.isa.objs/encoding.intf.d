lib/isa/encoding.mli: Buffer Instr
