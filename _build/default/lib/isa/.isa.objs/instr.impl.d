lib/isa/instr.ml: Cycles Format Printf String
