type line = { addr : int; size : int; instr : Instr.t option; bytes : string }

let hex_bytes blob off len =
  String.concat " "
    (List.init len (fun i -> Printf.sprintf "%02x" (Char.code (Bytes.get blob (off + i)))))

let disassemble ?(origin = 0x8000) blob =
  let len = Bytes.length blob in
  let read_byte a =
    let off = a - origin in
    if off < 0 || off >= len then raise (Encoding.Decode_error { addr = a; msg = "eof" })
    else Char.code (Bytes.get blob off)
  in
  let rec go addr acc =
    if addr - origin >= len then List.rev acc
    else begin
      match Encoding.decode read_byte addr with
      | instr, size ->
          go (addr + size)
            ({ addr; size; instr = Some instr; bytes = hex_bytes blob (addr - origin) size }
            :: acc)
      | exception Encoding.Decode_error _ ->
          go (addr + 1)
            ({ addr; size = 1; instr = None; bytes = hex_bytes blob (addr - origin) 1 } :: acc)
    end
  in
  go origin []

let render ?(symbols = []) lines =
  let by_addr = List.map (fun (name, addr) -> (addr, name)) symbols in
  let label_at addr = List.assoc_opt addr by_addr in
  let target_of : Instr.t -> int option = function
    | Instr.Jmp a | Instr.Jcc (_, a) | Instr.Call a -> Some a
    | _ -> None
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun l ->
      (match label_at l.addr with
      | Some name -> Buffer.add_string buf (Printf.sprintf "%s:\n" name)
      | None -> ());
      let text =
        match l.instr with
        | Some i -> (
            let base = Instr.to_string i in
            match target_of i with
            | Some tgt -> (
                match label_at tgt with
                | Some name -> Printf.sprintf "%-24s ; -> %s" base name
                | None -> base)
            | None -> base)
        | None -> Printf.sprintf ".byte 0x%s" l.bytes
      in
      Buffer.add_string buf (Printf.sprintf "  %06x: %-28s %s\n" l.addr l.bytes text))
    lines;
  Buffer.contents buf

let of_program (p : Asm.program) =
  render ~symbols:p.symbols (disassemble ~origin:p.origin p.code)
