(** Binary encoding of vx instructions.

    Virtine images are flat byte blobs loaded into guest memory (the paper
    loads them at guest address 0x8000); the CPU fetches and decodes from
    guest memory, so image size is a real quantity (Figure 12 sweeps it).

    Layout: a 1-byte opcode followed by operand fields. Register operands
    are one byte (0x00-0x0F); an operand byte with the high bit set
    (0x80) announces a little-endian signed 64-bit immediate. Branch
    targets and displacements are little-endian 32-bit. *)

exception Decode_error of { addr : int; msg : string }

val encode : Buffer.t -> Instr.t -> unit
(** Append the encoding of one instruction. *)

val encoded_size : Instr.t -> int
(** Size in bytes of the encoding (needed for two-pass layout). *)

val decode : (int -> int) -> int -> Instr.t * int
(** [decode read_byte addr] decodes the instruction at [addr], where
    [read_byte a] returns the byte at guest address [a]. Returns the
    instruction and its size. Raises {!Decode_error} on an illegal
    opcode or malformed operand — the CPU turns that into an
    invalid-opcode fault. *)

val encode_program : Instr.t list -> bytes
(** Concatenated encoding. *)

val decode_program : bytes -> Instr.t list
(** Decode an entire blob (must contain only whole instructions). *)
