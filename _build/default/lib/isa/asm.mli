(** Two-pass assembler for vx programs.

    Plays the role NASM plays in the paper's toolchain: hand-written
    runtime stubs and test images are written either programmatically
    (symbolic instructions with label targets) or as assembly text. *)

type target = Lbl of string | Abs of int

(** Symbolic instruction: like {!Instr.t} but control flow may name labels,
    and data can be interleaved with code. *)
type item =
  | Label of string
  | Insn of sym_insn
  | Byte of int list          (** raw data bytes *)
  | Quad of int64 list        (** raw little-endian 64-bit words *)
  | Zero of int               (** [n] zero bytes (bss-style padding) *)
  | Str of string             (** NUL-terminated string data *)

and sym_insn =
  | SHlt
  | SNop
  | SMov of Instr.reg * sym_operand
  | SBin of Instr.binop * Instr.reg * sym_operand
  | SNeg of Instr.reg
  | SNot of Instr.reg
  | SCmp of Instr.reg * sym_operand
  | SJmp of target
  | SJcc of Instr.cond * target
  | SCall of target
  | SCallr of Instr.reg
  | SRet
  | SPush of sym_operand
  | SPop of Instr.reg
  | SLoad of Instr.width * Instr.reg * Instr.reg * int
  | SStore of Instr.width * Instr.reg * int * sym_operand
  | SLea of Instr.reg * Instr.reg * int
  | SOut of int * sym_operand
  | SIn of Instr.reg * int
  | SRdtsc of Instr.reg

and sym_operand = OReg of Instr.reg | OImm of int64 | OLbl of string
(** [OLbl l] becomes an immediate holding the absolute address of [l]. *)

exception Asm_error of string

type program = {
  code : bytes;                   (** encoded bytes, to load at [origin] *)
  origin : int;                   (** load address *)
  entry : int;                    (** absolute entry address *)
  symbols : (string * int) list;  (** label -> absolute address *)
}

val assemble : ?origin:int -> ?entry:string -> item list -> program
(** Two-pass assembly. [origin] defaults to 0x8000 (where Wasp loads
    images, §5.1); [entry] defaults to the first item's address. Raises
    {!Asm_error} on duplicate or undefined labels. *)

val parse : string -> item list
(** Parse assembly text. Syntax, one statement per line:
    {v
      ; comment
      label:
        mov r0, 20        ; also: add/sub/mul/div/rem/and/or/xor/shl/shr/sar
        cmp r0, r1
        jlt label         ; jeq jne jlt jle jgt jge jult jule jugt juge
        call fib
        ld64 r1, [r2+8]   ; ld8/16/32/64, st8/16/32/64
        st32 [r2-4], r1
        lea r0, [r15+16]
        push r0 / pop r1 / out 1, r0 / in r0, 2 / rdtsc r3 / ret / hlt / nop
        .byte 1, 2, 0xff
        .quad 42
        .zero 64
        .string "hello"
    v}
    Raises {!Asm_error} with a line number on syntax errors. *)

val assemble_string : ?origin:int -> ?entry:string -> string -> program
(** [parse] + [assemble]. *)

val lookup : program -> string -> int
(** Address of a label. Raises [Not_found]. *)
