(** In-memory tables for the §7.1 UDF scenario.

    "Postgres, for example, uses V8 mechanisms to isolate individual UDFs
    from one another, but they still execute in the same address space.
    Because virtine address spaces are disjoint, they could help with
    this limitation." This substrate is the database those UDFs run in:
    typed columns, row storage, schema validation. *)

type value = Int of int64 | Text of string

type column_type = Tint | Ttext

type schema = (string * column_type) list

type t

exception Schema_error of string

val create : name:string -> schema -> t
(** @raise Schema_error on duplicate or empty column names. *)

val name : t -> string
val schema : t -> schema

val insert : t -> value list -> unit
(** @raise Schema_error on arity or type mismatch. *)

val insert_all : t -> value list list -> unit

val rows : t -> value list list
(** Insertion order. *)

val length : t -> int

val column_index : t -> string -> int option

val value_equal : value -> value -> bool
val pp_value : Format.formatter -> value -> unit
