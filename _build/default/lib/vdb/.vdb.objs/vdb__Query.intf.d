lib/vdb/query.mli: Table Udf Vjs
