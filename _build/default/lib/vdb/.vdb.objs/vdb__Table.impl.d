lib/vdb/table.ml: Format List Printf
