lib/vdb/table.mli: Format
