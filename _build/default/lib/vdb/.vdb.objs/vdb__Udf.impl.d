lib/vdb/udf.ml: Hashtbl List Printf Vcc Vjs Wasp
