lib/vdb/udf.mli: Vjs Wasp
