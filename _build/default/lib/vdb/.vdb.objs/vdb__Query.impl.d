lib/vdb/query.ml: Hashtbl Int64 List Result Table Udf Vjs
