type value = Int of int64 | Text of string

type column_type = Tint | Ttext

type schema = (string * column_type) list

exception Schema_error of string

type t = { tname : string; tschema : schema; mutable trows : value list list }

let fail fmt = Printf.ksprintf (fun s -> raise (Schema_error s)) fmt

let create ~name schema =
  if schema = [] then fail "table %s: empty schema" name;
  let names = List.map fst schema in
  List.iter (fun n -> if n = "" then fail "table %s: empty column name" name) names;
  if List.length (List.sort_uniq compare names) <> List.length names then
    fail "table %s: duplicate column" name;
  { tname = name; tschema = schema; trows = [] }

let name t = t.tname
let schema t = t.tschema

let type_matches ty v =
  match (ty, v) with Tint, Int _ -> true | Ttext, Text _ -> true | _ -> false

let insert t row =
  if List.length row <> List.length t.tschema then
    fail "table %s: expected %d values, got %d" t.tname (List.length t.tschema)
      (List.length row);
  List.iter2
    (fun (cname, ty) v ->
      if not (type_matches ty v) then fail "table %s: column %s type mismatch" t.tname cname)
    t.tschema row;
  t.trows <- row :: t.trows

let insert_all t rows = List.iter (insert t) rows

let rows t = List.rev t.trows

let length t = List.length t.trows

let column_index t cname =
  let rec go i = function
    | [] -> None
    | (n, _) :: rest -> if n = cname then Some i else go (i + 1) rest
  in
  go 0 t.tschema

let value_equal a b =
  match (a, b) with Int x, Int y -> x = y | Text x, Text y -> x = y | _ -> false

let pp_value ppf = function
  | Int v -> Format.fprintf ppf "%Ld" v
  | Text s -> Format.fprintf ppf "%S" s
