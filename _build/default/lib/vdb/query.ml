type isolation = Per_row | Per_query

let row_to_js table row =
  let tbl = Hashtbl.create 8 in
  List.iter2
    (fun (cname, _) v ->
      Hashtbl.replace tbl cname
        (match (v : Table.value) with
        | Table.Int i -> Vjs.Jsvalue.Num (Int64.to_float i)
        | Table.Text s -> Vjs.Jsvalue.Str s))
    (Table.schema table) row;
  Vjs.Jsvalue.Obj tbl

let js_to_value (v : Vjs.Jsvalue.t) : Table.value =
  match v with
  | Vjs.Jsvalue.Num n -> Table.Int (Int64.of_float n)
  | Vjs.Jsvalue.Str s -> Table.Text s
  | Vjs.Jsvalue.Bool b -> Table.Int (if b then 1L else 0L)
  | Vjs.Jsvalue.Null | Vjs.Jsvalue.Undefined -> Table.Int 0L
  | other -> Table.Text (Vjs.Json.stringify other)

let ( let* ) = Result.bind

(* evaluate a UDF over all rows under the chosen isolation *)
let eval_all udfs ~name ~isolation js_rows =
  match isolation with
  | Per_query -> Udf.apply_batch udfs ~name js_rows
  | Per_row ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | r :: rest -> (
            match Udf.apply_row udfs ~name r with
            | Ok v -> go (v :: acc) rest
            | Error e -> Error e)
      in
      go [] js_rows

let select udfs table ?where_ ?project ?(isolation = Per_query) () =
  let rows = Table.rows table in
  let js_rows = List.map (row_to_js table) rows in
  let* kept, kept_js =
    match where_ with
    | None -> Ok (rows, js_rows)
    | Some name ->
        let* verdicts = eval_all udfs ~name ~isolation js_rows in
        let paired = List.combine rows js_rows in
        let kept =
          List.filter_map
            (fun (pair, verdict) -> if Vjs.Jsvalue.truthy verdict then Some pair else None)
            (List.combine paired verdicts)
        in
        Ok (List.map fst kept, List.map snd kept)
  in
  match project with
  | None -> Ok kept
  | Some name ->
      let* projected = eval_all udfs ~name ~isolation kept_js in
      Ok (List.map (fun v -> [ js_to_value v ]) projected)

let select_c udfs table ~where_ () =
  let int_indices =
    List.filteri
      (fun _ (_, ty) -> ty = Table.Tint)
      (List.mapi (fun i c -> (i, c)) (Table.schema table) |> List.map snd)
  in
  ignore int_indices;
  let int_args row =
    List.filter_map
      (fun (v : Table.value) ->
        match v with Table.Int i -> Some i | Table.Text _ -> None)
      row
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | row :: rest -> (
        match Udf.apply_c udfs ~name:where_ (int_args row) with
        | Ok v -> if v <> 0L then go (row :: acc) rest else go acc rest
        | Error e -> Error e)
  in
  go [] (Table.rows table)
