(** The query executor: scans with UDF predicates and projections.

    [isolation] picks where the virtine boundary sits:
    - [Per_row]: every UDF evaluation runs in its own virtine — UDFs are
      isolated from the engine {i and from each other}, the property §7.1
      says per-process V8 cannot give.
    - [Per_query]: one virtine evaluates the whole scan — one boundary
      per query, much cheaper, still isolating the UDF from the engine. *)

type isolation = Per_row | Per_query

val row_to_js : Table.t -> Table.value list -> Vjs.Jsvalue.t
(** A row as an object: column name -> value. *)

val js_to_value : Vjs.Jsvalue.t -> Table.value
(** Numbers round to Int; strings to Text; booleans to Int 0/1;
    structures serialize to JSON Text. *)

val select :
  Udf.t ->
  Table.t ->
  ?where_:string ->
  ?project:string ->
  ?isolation:isolation ->
  unit ->
  (Table.value list list, string) result
(** Scan the table; keep rows where the [where_] UDF is truthy; map each
    kept row through [project] (result rows are single-column) or return
    the full row. [isolation] defaults to [Per_query]. *)

val select_c :
  Udf.t -> Table.t -> where_:string -> unit -> (Table.value list list, string) result
(** Scan with a C-dialect UDF predicate over the table's integer columns
    (each evaluation is one virtine invocation). *)
