type registration =
  | Js_udf of { row : Vjs.Isolate.t; batch : Vjs.Isolate.t }
  | Native_udf of (Vjs.Jsvalue.t -> (Vjs.Jsvalue.t, string) result)
  | C_udf of { compiled : Vcc.Compile.compiled; fn : string }

type t = { wasp : Wasp.Runtime.t; udfs : (string, registration) Hashtbl.t }

exception Unknown_udf of string

type kind = Js | Native | C

let create wasp = { wasp; udfs = Hashtbl.create 8 }

let batch_driver ~entry =
  Printf.sprintf
    {|
function __vdb_batch(rows) {
  var out = [];
  for (var i = 0; i < rows.length; i++) {
    out.push(%s(rows[i]));
  }
  return out;
}
|}
    entry

let register_js t ~name ~source ~entry =
  let row =
    Vjs.Isolate.create t.wasp ~key:(Printf.sprintf "udf:%s:row" name) ~source ~entry
  in
  let batch =
    Vjs.Isolate.create t.wasp
      ~key:(Printf.sprintf "udf:%s:batch" name)
      ~source:(source ^ batch_driver ~entry)
      ~entry:"__vdb_batch"
  in
  Hashtbl.replace t.udfs name (Js_udf { row; batch })

let register_native t ~name f = Hashtbl.replace t.udfs name (Native_udf f)

let register_c t ~name ~source ~fn =
  let compiled = Vcc.Compile.compile ~name:("udf_" ^ name) source in
  (match Vcc.Compile.find_virtine compiled fn with
  | Some _ -> ()
  | None ->
      raise
        (Vcc.Compile.Compile_error (Printf.sprintf "UDF %s: %s is not virtine-annotated" name fn)));
  Hashtbl.replace t.udfs name (C_udf { compiled; fn })

let registered t = Hashtbl.fold (fun k _ acc -> k :: acc) t.udfs [] |> List.sort compare

let lookup t name =
  match Hashtbl.find_opt t.udfs name with
  | Some r -> r
  | None -> raise (Unknown_udf name)

let kind_of t name =
  match lookup t name with Js_udf _ -> Js | Native_udf _ -> Native | C_udf _ -> C

let apply_row t ~name row =
  match lookup t name with
  | Js_udf { row = isolate; _ } -> fst (Vjs.Isolate.call_json isolate [ row ])
  | Native_udf f -> f row
  | C_udf _ -> Error "C UDFs take integer arguments; use apply_c"

let apply_batch t ~name rows =
  match lookup t name with
  | Js_udf { batch; _ } -> (
      match fst (Vjs.Isolate.call_json batch [ Vjs.Jsvalue.Arr (Vjs.Jsvalue.vec_of_list rows) ]) with
      | Ok (Vjs.Jsvalue.Arr out) -> Ok (Vjs.Jsvalue.vec_to_list out)
      | Ok _ -> Error "batch driver returned a non-array"
      | Error e -> Error e)
  | Native_udf f ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | r :: rest -> ( match f r with Ok v -> go (v :: acc) rest | Error e -> Error e)
      in
      go [] rows
  | C_udf _ -> Error "C UDFs take integer arguments; use apply_c"

let apply_c t ~name args =
  match lookup t name with
  | C_udf { compiled; fn } -> (
      let r = Vcc.Compile.invoke t.wasp compiled fn args () in
      match r.Wasp.Runtime.outcome with
      | Wasp.Runtime.Exited _ -> Ok r.Wasp.Runtime.return_value
      | Wasp.Runtime.Faulted _ -> Error "UDF faulted"
      | Wasp.Runtime.Fuel_exhausted -> Error "UDF ran out of fuel")
  | Js_udf _ | Native_udf _ -> Error (Printf.sprintf "%s is not a C UDF" name)
