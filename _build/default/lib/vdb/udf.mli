(** User-defined functions, each isolated in virtines (§7.1).

    JS UDFs get two isolates: a row-level one (entry called once per row —
    every evaluation is its own virtine, the strongest isolation) and a
    batch one (a generated driver maps the entry over all rows in a single
    virtine invocation — one isolation boundary per query). Native UDFs
    run on the host and serve as the unisolated baseline.

    "Virtines would allow functions in unsafe languages (e.g., C, C++) to
    be safely used for UDFs": C-dialect UDFs compile with the [virtine]
    annotation and apply to integer columns. *)

type t

exception Unknown_udf of string

val create : Wasp.Runtime.t -> t

val register_js : t -> name:string -> source:string -> entry:string -> unit
(** The entry receives one row as an object ({i column -> value}). *)

val register_native : t -> name:string -> (Vjs.Jsvalue.t -> (Vjs.Jsvalue.t, string) result) -> unit

val register_c : t -> name:string -> source:string -> fn:string -> unit
(** [source] is virtine C; [fn] the annotated function. It receives the
    row's integer columns (schema order) as arguments.
    @raise Vcc.Compile.Compile_error *)

val registered : t -> string list

type kind = Js | Native | C

val kind_of : t -> string -> kind
(** @raise Unknown_udf *)

val apply_row : t -> name:string -> Vjs.Jsvalue.t -> (Vjs.Jsvalue.t, string) result
(** Evaluate the UDF on one row object — for JS UDFs, one fresh virtine
    per call. @raise Unknown_udf *)

val apply_batch : t -> name:string -> Vjs.Jsvalue.t list -> (Vjs.Jsvalue.t list, string) result
(** Evaluate on all rows in one isolation boundary (one virtine for JS;
    a plain loop for native). @raise Unknown_udf *)

val apply_c : t -> name:string -> int64 list -> (int64, string) result
(** Invoke a C UDF as a virtine with the given integer arguments.
    @raise Unknown_udf *)
