(** Optimization passes.

    Two conservative passes, both validated by differential testing
    against the unoptimized pipeline:

    - {!fold_program}: AST-level constant folding and dead-branch
      elimination. Folding must commute with the CPU's mode-width
      truncation, so ring-homomorphic operators (+ - * & | ^ ~ neg, <<)
      fold unconditionally while the rest (shifts right, division,
      comparisons) fold only when every operand fits in 16-bit signed
      range — safe in all three processor modes.

    - {!peephole}: assembly-level cleanup (push/pop pairs, self-moves,
      jumps to the next instruction, dead double-stores to the same
      register). Runs to a fixpoint; never moves code across labels. *)

val fold_program : Ast.program -> Ast.program
(** Constant-fold every function body (run before {!Sema.check}). *)

val fold_expr : Ast.expr -> Ast.expr
(** Exposed for tests. *)

val peephole : Asm.item list -> Asm.item list

val fold_count : Ast.program -> int
(** Number of literal leaves after folding (a proxy for effectiveness,
    used by tests). *)
