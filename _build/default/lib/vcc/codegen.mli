(** Code generation: typed AST -> vx assembly.

    A straightforward accumulator/stack scheme: expression results land in
    r0, intermediates are spilled to the guest stack, locals live in a
    frame addressed from r13 (the frame pointer). Calls pass up to six
    arguments in r0-r5 (matching the image entry stub, which pulls the
    marshalled arguments from guest address 0). *)

exception Codegen_error of string

val gen_function : Ast.program -> Ast.func -> Asm.item list
(** Code for one function, labelled [fn_<name>]. *)

val gen_image_items :
  Ast.program -> root:Ast.func -> snapshot:bool -> Callgraph.reachable -> Asm.item list
(** The complete item list for a virtine image: crt0 (with optional
    snapshot point), the argument-unmarshalling stub, all reachable
    functions, the libc library, reachable globals, and the heap-start
    marker. Entry label: {!Vlibc.entry_label}. *)

val global_label : string -> string
(** Label carrying a global variable's storage ([g_<name>]). *)

val function_label : string -> string
(** [fn_<name>]. *)
