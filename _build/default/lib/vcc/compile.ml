exception Compile_error of string

type virtine_info = {
  func : Ast.func;
  image : Wasp.Image.t;
  asm : Asm.program;
  policy : Wasp.Policy.t;
  snapshot : bool;
}

type compiled = {
  ast : Ast.program;
  unit_name : string;
  mode : Vm.Modes.t;
  mem_size : int option;
  optimize : bool;
  virtine_list : virtine_info list;
  native_cache : (string, Asm.program * Wasp.Image.t) Hashtbl.t;
}

let wrap f =
  try f () with
  | Lexer.Lex_error { loc; msg } ->
      raise (Compile_error (Format.asprintf "lex error at %a: %s" Ast.pp_loc loc msg))
  | Parser.Parse_error { loc; msg } ->
      raise (Compile_error (Format.asprintf "parse error at %a: %s" Ast.pp_loc loc msg))
  | Sema.Sema_error { loc; msg } ->
      raise (Compile_error (Format.asprintf "error at %a: %s" Ast.pp_loc loc msg))
  | Codegen.Codegen_error msg | Asm.Asm_error msg -> raise (Compile_error msg)

let policy_of_annotation ~snapshot (a : Ast.annotation) : Wasp.Policy.t =
  (* The snapshot hypercall is runtime infrastructure (it exposes nothing
     external), so the compiler grants it whenever snapshotting is on. *)
  let snapshot_bits = if snapshot then [ Wasp.Hc.snapshot ] else [] in
  match a with
  | Ast.Not_virtine | Ast.Virtine -> Wasp.Policy.of_list snapshot_bits
  | Ast.Virtine_permissive -> Wasp.Policy.allow_all
  | Ast.Virtine_config mask ->
      Wasp.Policy.Mask
        (Int64.logor mask (Wasp.Policy.mask_of_list snapshot_bits))

let build_image prog ~unit_name ~mode ~mem_size ~snapshot ~optimize (f : Ast.func) =
  let reach = Callgraph.from prog ~root:f.Ast.fname in
  let items = Codegen.gen_image_items prog ~root:f ~snapshot reach in
  let items = if optimize then Optim.peephole items else items in
  let asm =
    Asm.assemble ~origin:Wasp.Layout.image_base ~entry:Vlibc.entry_label items
  in
  let image =
    Wasp.Image.of_program
      ~name:(Printf.sprintf "%s:%s" unit_name f.Ast.fname)
      ~mode ?mem_size asm
  in
  (asm, image)

let compile ?(snapshot = true) ?(mode = Vm.Modes.Long) ?mem_size ?(name = "unit")
    ?(optimize = false) src =
  wrap (fun () ->
      let parsed = Parser.parse src in
      let parsed = if optimize then Optim.fold_program parsed else parsed in
      let prog = Sema.check parsed in
      let virtine_list =
        List.map
          (fun (f : Ast.func) ->
            let asm, image =
              build_image prog ~unit_name:name ~mode ~mem_size ~snapshot ~optimize f
            in
            {
              func = f;
              image;
              asm;
              policy = policy_of_annotation ~snapshot f.Ast.annot;
              snapshot;
            })
          (Callgraph.virtine_roots prog)
      in
      {
        ast = prog;
        unit_name = name;
        mode;
        mem_size;
        optimize;
        virtine_list;
        native_cache = Hashtbl.create 4;
      })

let ast c = c.ast
let virtines c = c.virtine_list

let find_virtine c name =
  List.find_opt (fun vi -> vi.func.Ast.fname = name) c.virtine_list

let invoke w c fname args ?handlers ?conn ?fuel () =
  match find_virtine c fname with
  | None -> raise Not_found
  | Some vi ->
      let snapshot_key = if vi.snapshot then Some vi.image.Wasp.Image.name else None in
      Wasp.Runtime.run w vi.image ~policy:vi.policy ?handlers ~args ?conn ?snapshot_key
        ?fuel ()

let native_program c fname =
  match Hashtbl.find_opt c.native_cache fname with
  | Some cached -> cached
  | None ->
      let f =
        match Ast.find_func c.ast fname with
        | Some f -> f
        | None -> raise (Compile_error (Printf.sprintf "no function %s" fname))
      in
      let built =
        wrap (fun () ->
            build_image c.ast ~unit_name:c.unit_name ~mode:Vm.Modes.Long
              ~mem_size:c.mem_size ~snapshot:false ~optimize:c.optimize f)
      in
      Hashtbl.replace c.native_cache fname built;
      built

let invoke_native ~clock c fname args ?(fuel = 500_000_000) () =
  let asm, image = native_program c fname in
  let mem = Vm.Memory.create ~size:image.Wasp.Image.mem_size in
  Vm.Memory.write_bytes mem ~off:image.Wasp.Image.origin image.Wasp.Image.code;
  (* a native process is already initialized: point the allocator at the
     heap without running the crt0 path *)
  let heap_ptr = Asm.lookup asm Vlibc.heap_ptr_label in
  let heap_start = Asm.lookup asm "__heap_start" in
  Vm.Memory.write_u64 mem heap_ptr (Int64.of_int heap_start);
  List.iteri (fun i v -> Vm.Memory.write_u64 mem (8 * i) v) args;
  let cpu = Vm.Cpu.create ~mem ~mode:Vm.Modes.Long ~clock in
  Vm.Cpu.set_pc cpu (Asm.lookup asm Vlibc.post_init_label);
  Vm.Cpu.set_sp cpu Wasp.Layout.stack_top;
  Cycles.Clock.advance_int clock Cycles.Costs.function_call;
  let rec loop () =
    match Vm.Cpu.run ~fuel cpu with
    | Vm.Cpu.Halt -> Vm.Cpu.get_reg cpu 0
    | Vm.Cpu.Io_out { port; value } when port = Wasp.Hc.port ->
        let nr = Int64.to_int value in
        if nr = Wasp.Hc.exit_ then Vm.Cpu.get_reg cpu 1
        else begin
          (* natively, libc calls hit the host directly; model them as
             succeeding with no isolation cost *)
          Vm.Cpu.set_reg cpu 0 0L;
          loop ()
        end
    | Vm.Cpu.Io_out _ | Vm.Cpu.Io_in _ ->
        Vm.Cpu.set_reg cpu 0 0L;
        loop ()
    | Vm.Cpu.Fault f ->
        raise
          (Compile_error
             (Format.asprintf "native execution of %s faulted: %a" fname
                (fun ppf f -> Vm.Cpu.pp_exit ppf (Vm.Cpu.Fault f))
                f))
    | Vm.Cpu.Out_of_fuel ->
        raise (Compile_error (Printf.sprintf "native execution of %s ran out of fuel" fname))
  in
  loop ()
