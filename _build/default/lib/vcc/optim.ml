(* ------------------------------------------------------------------ *)
(* AST constant folding                                                 *)
(* ------------------------------------------------------------------ *)

let fits_i16 v = Int64.compare v (-32768L) >= 0 && Int64.compare v 32767L <= 0

(* operators whose folding commutes with truncation to any mode width *)
let homomorphic : Ast.binop -> bool = function
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl -> true
  | Ast.Div | Ast.Rem | Ast.Shr | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne
  | Ast.Land | Ast.Lor ->
      false

let eval_binop (op : Ast.binop) a b : int64 option =
  let bool_ c = Some (if c then 1L else 0L) in
  match op with
  | Ast.Add -> Some (Int64.add a b)
  | Ast.Sub -> Some (Int64.sub a b)
  | Ast.Mul -> Some (Int64.mul a b)
  | Ast.Div -> if b = 0L then None else Some (Int64.div a b)
  | Ast.Rem -> if b = 0L then None else Some (Int64.rem a b)
  | Ast.Band -> Some (Int64.logand a b)
  | Ast.Bor -> Some (Int64.logor a b)
  | Ast.Bxor -> Some (Int64.logxor a b)
  | Ast.Shl -> Some (Int64.shift_left a (Int64.to_int (Int64.logand b 63L)))
  | Ast.Shr -> Some (Int64.shift_right_logical a (Int64.to_int (Int64.logand b 63L)))
  | Ast.Lt -> bool_ (Int64.compare a b < 0)
  | Ast.Le -> bool_ (Int64.compare a b <= 0)
  | Ast.Gt -> bool_ (Int64.compare a b > 0)
  | Ast.Ge -> bool_ (Int64.compare a b >= 0)
  | Ast.Eq -> bool_ (a = b)
  | Ast.Ne -> bool_ (a <> b)
  | Ast.Land -> bool_ (a <> 0L && b <> 0L)
  | Ast.Lor -> bool_ (a <> 0L || b <> 0L)

let literal (e : Ast.expr) : int64 option =
  match e.Ast.desc with
  | Ast.Int_lit v -> Some v
  | Ast.Char_lit c -> Some (Int64.of_int (Char.code c))
  | _ -> None

let mk (template : Ast.expr) desc : Ast.expr = { template with Ast.desc = desc }

let rec fold_expr (e : Ast.expr) : Ast.expr =
  match e.Ast.desc with
  | Ast.Int_lit _ | Ast.Char_lit _ | Ast.Str_lit _ | Ast.Var _ -> e
  | Ast.Unary (op, a) -> (
      let a = fold_expr a in
      match (op, literal a) with
      | Ast.Neg, Some v -> mk e (Ast.Int_lit (Int64.neg v))
      | Ast.Bitnot, Some v -> mk e (Ast.Int_lit (Int64.lognot v))
      | Ast.Lognot, Some v when fits_i16 v ->
          mk e (Ast.Int_lit (if v = 0L then 1L else 0L))
      | _ -> mk e (Ast.Unary (op, a)))
  | Ast.Binary (op, a, b) -> (
      let a = fold_expr a and b = fold_expr b in
      match (literal a, literal b) with
      | Some va, Some vb
        when homomorphic op || (fits_i16 va && fits_i16 vb) -> (
          match eval_binop op va vb with
          | Some v -> mk e (Ast.Int_lit v)
          | None -> mk e (Ast.Binary (op, a, b)))
      | _ -> (
          (* algebraic identities that hold under truncation *)
          match (op, literal a, literal b) with
          | Ast.Add, Some 0L, _ -> b
          | (Ast.Add | Ast.Sub), _, Some 0L -> a
          | Ast.Mul, _, Some 1L -> a
          | Ast.Mul, Some 1L, _ -> b
          | (Ast.Bor | Ast.Bxor), _, Some 0L -> a
          | (Ast.Bor | Ast.Bxor), Some 0L, _ -> b
          | Ast.Shl, _, Some 0L -> a
          | _ -> mk e (Ast.Binary (op, a, b))))
  | Ast.Assign (lhs, rhs) -> mk e (Ast.Assign (fold_lvalue lhs, fold_expr rhs))
  | Ast.Call (f, args) -> mk e (Ast.Call (f, List.map fold_expr args))
  | Ast.Index (a, i) -> mk e (Ast.Index (fold_expr a, fold_expr i))
  | Ast.Cond (c, a, b) -> (
      let c = fold_expr c in
      match literal c with
      | Some v when fits_i16 v -> if v <> 0L then fold_expr a else fold_expr b
      | _ -> mk e (Ast.Cond (c, fold_expr a, fold_expr b)))

(* inside an assignment target, only fold index expressions: the base
   variable/deref structure must stay an lvalue *)
and fold_lvalue (e : Ast.expr) : Ast.expr =
  match e.Ast.desc with
  | Ast.Index (a, i) -> mk e (Ast.Index (fold_expr a, fold_expr i))
  | Ast.Unary (Ast.Deref, p) -> mk e (Ast.Unary (Ast.Deref, fold_expr p))
  | _ -> e

let rec fold_stmt (s : Ast.stmt) : Ast.stmt list =
  match s with
  | Ast.Expr e -> [ Ast.Expr (fold_expr e) ]
  | Ast.Decl (ty, name, init, loc) -> [ Ast.Decl (ty, name, Option.map fold_expr init, loc) ]
  | Ast.If (c, t, f) -> (
      let c = fold_expr c in
      let t = fold_stmts t and f = fold_stmts f in
      match literal c with
      | Some v when fits_i16 v -> [ Ast.Block (if v <> 0L then t else f) ]
      | _ -> [ Ast.If (c, t, f) ])
  | Ast.While (c, body) -> (
      let c = fold_expr c in
      match literal c with
      | Some 0L -> []
      | _ -> [ Ast.While (c, fold_stmts body) ])
  | Ast.Dowhile (body, c) -> [ Ast.Dowhile (fold_stmts body, fold_expr c) ]
  | Ast.For (init, cond, step, body) ->
      let init = Option.map (fun s -> match fold_stmt s with [ s ] -> s | l -> Ast.Block l) init in
      [ Ast.For (init, Option.map fold_expr cond, Option.map fold_expr step, fold_stmts body) ]
  | Ast.Return (e, loc) -> [ Ast.Return (Option.map fold_expr e, loc) ]
  | Ast.Break _ | Ast.Continue _ -> [ s ]
  | Ast.Block body -> [ Ast.Block (fold_stmts body) ]

and fold_stmts body = List.concat_map fold_stmt body

let fold_program (p : Ast.program) : Ast.program =
  { p with Ast.funcs = List.map (fun f -> { f with Ast.body = fold_stmts f.Ast.body }) p.Ast.funcs }

let fold_count (p : Ast.program) =
  let n = ref 0 in
  let rec expr (e : Ast.expr) =
    match e.Ast.desc with
    | Ast.Int_lit _ | Ast.Char_lit _ -> incr n
    | Ast.Str_lit _ | Ast.Var _ -> ()
    | Ast.Unary (_, a) -> expr a
    | Ast.Binary (_, a, b) | Ast.Assign (a, b) | Ast.Index (a, b) ->
        expr a;
        expr b
    | Ast.Call (_, args) -> List.iter expr args
    | Ast.Cond (c, a, b) ->
        expr c;
        expr a;
        expr b
  in
  let rec stmt = function
    | Ast.Expr e -> expr e
    | Ast.Decl (_, _, init, _) -> Option.iter expr init
    | Ast.If (c, t, f) ->
        expr c;
        List.iter stmt t;
        List.iter stmt f
    | Ast.While (c, b) | Ast.Dowhile (b, c) ->
        expr c;
        List.iter stmt b
    | Ast.For (i, c, s, b) ->
        Option.iter stmt i;
        Option.iter expr c;
        Option.iter expr s;
        List.iter stmt b
    | Ast.Return (e, _) -> Option.iter expr e
    | Ast.Break _ | Ast.Continue _ -> ()
    | Ast.Block b -> List.iter stmt b
  in
  List.iter (fun (f : Ast.func) -> List.iter stmt f.Ast.body) p.Ast.funcs;
  !n

(* ------------------------------------------------------------------ *)
(* Assembly peephole                                                    *)
(* ------------------------------------------------------------------ *)

let peephole_once items =
  let changed = ref false in
  let rec go = function
    (* push rA; pop rB  ->  mov rB, rA (or nothing when rA = rB) *)
    | Asm.Insn (Asm.SPush (Asm.OReg a)) :: Asm.Insn (Asm.SPop b) :: rest ->
        changed := true;
        if a = b then go rest else Asm.Insn (Asm.SMov (b, Asm.OReg a)) :: go rest
    (* push imm; pop rB -> mov rB, imm *)
    | Asm.Insn (Asm.SPush (Asm.OImm v)) :: Asm.Insn (Asm.SPop b) :: rest ->
        changed := true;
        Asm.Insn (Asm.SMov (b, Asm.OImm v)) :: go rest
    (* mov rA, rA -> nothing *)
    | Asm.Insn (Asm.SMov (a, Asm.OReg b)) :: rest when a = b ->
        changed := true;
        go rest
    (* jmp L; L: -> L: *)
    | Asm.Insn (Asm.SJmp (Asm.Lbl l)) :: (Asm.Label l' :: _ as rest) when l = l' ->
        changed := true;
        go rest
    (* mov rD, _; mov rD, pure -> drop the first store *)
    | Asm.Insn (Asm.SMov (d1, (Asm.OReg _ | Asm.OImm _ | Asm.OLbl _)))
      :: (Asm.Insn (Asm.SMov (d2, src2)) :: _ as rest)
      when d1 = d2 && (match src2 with Asm.OReg s -> s <> d1 | Asm.OImm _ | Asm.OLbl _ -> true)
      ->
        changed := true;
        go rest
    | item :: rest -> item :: go rest
    | [] -> []
  in
  let out = go items in
  (out, !changed)

let peephole items =
  let rec fix items n =
    if n = 0 then items
    else begin
      let items', changed = peephole_once items in
      if changed then fix items' (n - 1) else items'
    end
  in
  fix items 8
