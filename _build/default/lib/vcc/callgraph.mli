(** Call-graph analysis (§5.3).

    "When this pass detects a function annotation ... it generates a call
    graph rooted at that function. The compiler automatically packages a
    subset of the source program into the virtine context based on what
    that virtine needs."

    The reachable set determines which functions and globals are linked
    into the virtine image. A call from inside a virtine to another
    virtine-annotated function does {i not} nest — it becomes a plain call
    inside the same image. *)

type reachable = {
  funcs : string list;    (** reachable program functions, root first *)
  globals : string list;  (** globals touched by any reachable function *)
  builtins : string list; (** libc builtins used *)
}

val from : Ast.program -> root:string -> reachable
(** Reachability from [root]. Raises [Invalid_argument] if [root] is not
    a function of the program. *)

val virtine_roots : Ast.program -> Ast.func list
(** All virtine-annotated functions. *)
