(** The guest C library (our newlib port, §5.3).

    "Newlib allows developers to provide their own system call
    implementations; we simply forward them to the hypervisor as a
    hypercall." Accordingly, every libc syscall here compiles to the
    hypercall ABI, and a small set of pure routines (malloc, memcpy,
    string functions) is provided as vx assembly linked into every image
    that needs them. *)

type builtin =
  | Hypercall of int        (** lower to the hypercall with this number *)
  | Inline_rdtsc            (** the rdtsc instruction *)
  | Library                 (** call a generated [__vl_<name>] routine *)

type signature = { params : Ast.ty list; ret : Ast.ty; kind : builtin }

val lookup : string -> signature option
(** Builtin by C-visible name ([read], [write], [malloc], ...). *)

val is_builtin : string -> bool

val library_names : string list
(** Names whose implementations {!library_items} provides. *)

val library_items : Asm.item list
(** vx implementations of every [Library] builtin plus the malloc heap
    state. Labels are [__vl_<name>]. Uses registers r0-r5 and r11/r12 as
    scratch; follows the same calling convention as compiled code (args in
    r0-r5, result in r0). *)

val items_for : string list -> Asm.item list
(** Selective linking: only the requested routines (and their internal
    dependencies, e.g. [puts] pulls in [strlen]) plus the heap state the
    crt0 always initializes. This is how "a virtine image contains only
    the software that a function needs" (§2). Unknown names are
    ignored. *)

val init_items : snapshot:bool -> Asm.item list
(** The crt0-style entry prologue: initialize the heap and libc state
    (the work a snapshot can skip), optionally take the snapshot, and
    fall through to the label [__start_main]. *)

val entry_label : string       (** "__entry": image entry point. *)
val post_init_label : string   (** "__start_main": where bare (native) runs may begin. *)
val heap_ptr_label : string    (** "__heap_ptr": the bump allocator's break. *)
