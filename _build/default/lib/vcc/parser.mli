(** Recursive-descent parser for the virtine C dialect. *)

exception Parse_error of { loc : Ast.loc; msg : string }

val parse : string -> Ast.program
(** Lex and parse a translation unit.
    @raise Parse_error (or {!Lexer.Lex_error}) on malformed input. *)

val parse_expr_string : string -> Ast.expr
(** Parse a single expression (for tests). *)
