(** Semantic analysis: scope resolution and type annotation.

    Walks the AST filling in every expression's [ty] field and rejecting
    the errors the paper's clang pass would reject: unknown identifiers,
    arity mismatches, assignment to non-lvalues, [break]/[continue]
    outside loops, duplicate definitions, and virtine functions with
    non-scalar parameters (the marshaller copies 64-bit words at address
    0, §7.2). *)

exception Sema_error of { loc : Ast.loc; msg : string }

val check : Ast.program -> Ast.program
(** Returns the same program with expression types filled in.
    @raise Sema_error on the first violation. *)

val is_lvalue : Ast.expr -> bool
