lib/vcc/lexer.mli: Ast
