lib/vcc/callgraph.ml: Ast Hashtbl List Option Printf Vlibc
