lib/vcc/codegen.ml: Asm Ast Callgraph Char Format Hashtbl Instr Int64 List Printf String Vlibc Wasp
