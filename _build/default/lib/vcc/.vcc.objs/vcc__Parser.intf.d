lib/vcc/parser.mli: Ast
