lib/vcc/vlibc.mli: Asm Ast
