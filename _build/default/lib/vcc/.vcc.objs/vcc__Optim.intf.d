lib/vcc/optim.mli: Asm Ast
