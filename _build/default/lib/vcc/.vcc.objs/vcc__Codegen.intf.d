lib/vcc/codegen.mli: Asm Ast Callgraph
