lib/vcc/compile.ml: Asm Ast Callgraph Codegen Cycles Format Hashtbl Int64 Lexer List Optim Parser Printf Sema Vlibc Vm Wasp
