lib/vcc/ast.ml: Format List
