lib/vcc/vlibc.ml: Asm Ast Hashtbl Instr Int64 List Wasp
