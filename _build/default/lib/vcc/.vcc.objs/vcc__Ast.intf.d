lib/vcc/ast.mli: Format
