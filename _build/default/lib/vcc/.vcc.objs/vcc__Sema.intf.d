lib/vcc/sema.mli: Ast
