lib/vcc/optim.ml: Asm Ast Char Int64 List Option
