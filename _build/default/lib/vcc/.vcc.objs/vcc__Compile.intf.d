lib/vcc/compile.mli: Asm Ast Cycles Vm Wasp
