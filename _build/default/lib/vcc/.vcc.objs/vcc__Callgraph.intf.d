lib/vcc/callgraph.mli: Ast
