lib/vcc/sema.ml: Ast Format Hashtbl List Printf String Vlibc
