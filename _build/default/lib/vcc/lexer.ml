type token =
  | INT_LIT of int64
  | CHAR_LIT of char
  | STR_LIT of string
  | IDENT of string
  | KW_INT | KW_CHAR | KW_VOID | KW_LONG
  | KW_IF | KW_ELSE | KW_WHILE | KW_DO | KW_FOR | KW_RETURN | KW_BREAK | KW_CONTINUE
  | KW_SIZEOF
  | KW_VIRTINE | KW_VIRTINE_PERMISSIVE | KW_VIRTINE_CONFIG
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | QUESTION | COLON
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | SHL | SHR
  | LT | LE | GT | GE | EQEQ | NEQ
  | ANDAND | OROR
  | ASSIGN
  | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ
  | PLUSPLUS | MINUSMINUS
  | EOF

let token_name = function
  | INT_LIT _ -> "integer literal"
  | CHAR_LIT _ -> "char literal"
  | STR_LIT _ -> "string literal"
  | IDENT s -> Printf.sprintf "identifier %S" s
  | KW_INT -> "'int'"
  | KW_CHAR -> "'char'"
  | KW_VOID -> "'void'"
  | KW_LONG -> "'long'"
  | KW_IF -> "'if'"
  | KW_ELSE -> "'else'"
  | KW_WHILE -> "'while'"
  | KW_DO -> "'do'"
  | KW_SIZEOF -> "'sizeof'"
  | KW_FOR -> "'for'"
  | KW_RETURN -> "'return'"
  | KW_BREAK -> "'break'"
  | KW_CONTINUE -> "'continue'"
  | KW_VIRTINE -> "'virtine'"
  | KW_VIRTINE_PERMISSIVE -> "'virtine_permissive'"
  | KW_VIRTINE_CONFIG -> "'virtine_config'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | QUESTION -> "'?'"
  | COLON -> "':'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | AMP -> "'&'"
  | PIPE -> "'|'"
  | CARET -> "'^'"
  | TILDE -> "'~'"
  | BANG -> "'!'"
  | SHL -> "'<<'"
  | SHR -> "'>>'"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | EQEQ -> "'=='"
  | NEQ -> "'!='"
  | ANDAND -> "'&&'"
  | OROR -> "'||'"
  | ASSIGN -> "'='"
  | PLUSEQ -> "'+='"
  | MINUSEQ -> "'-='"
  | STAREQ -> "'*='"
  | SLASHEQ -> "'/='"
  | PLUSPLUS -> "'++'"
  | MINUSMINUS -> "'--'"
  | EOF -> "end of input"

exception Lex_error of { loc : Ast.loc; msg : string }

let keyword = function
  | "int" -> Some KW_INT
  | "char" -> Some KW_CHAR
  | "void" -> Some KW_VOID
  | "long" -> Some KW_LONG
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "do" -> Some KW_DO
  | "sizeof" -> Some KW_SIZEOF
  | "for" -> Some KW_FOR
  | "return" -> Some KW_RETURN
  | "break" -> Some KW_BREAK
  | "continue" -> Some KW_CONTINUE
  | "virtine" -> Some KW_VIRTINE
  | "virtine_permissive" -> Some KW_VIRTINE_PERMISSIVE
  | "virtine_config" -> Some KW_VIRTINE_CONFIG
  | _ -> None

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let loc st : Ast.loc = { line = st.line; col = st.col }

let fail st msg = raise (Lex_error { loc = loc st; msg })

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let rec skip_ws_and_comments st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_ws_and_comments st
  | Some '/' when peek2 st = Some '/' ->
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      skip_ws_and_comments st
  | Some '/' when peek2 st = Some '*' ->
      advance st;
      advance st;
      let rec eat () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | Some _, _ ->
            advance st;
            eat ()
        | None, _ -> fail st "unterminated comment"
      in
      eat ();
      skip_ws_and_comments st
  | Some _ | None -> ()

let read_escape st =
  match peek st with
  | Some 'n' -> advance st; '\n'
  | Some 't' -> advance st; '\t'
  | Some 'r' -> advance st; '\r'
  | Some '0' -> advance st; '\000'
  | Some '\\' -> advance st; '\\'
  | Some '\'' -> advance st; '\''
  | Some '"' -> advance st; '"'
  | Some c -> fail st (Printf.sprintf "bad escape '\\%c'" c)
  | None -> fail st "unterminated escape"

let read_number st =
  let start = st.pos in
  let hex =
    peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X')
  in
  if hex then begin
    advance st;
    advance st;
    while (match peek st with Some c -> is_hex c | None -> false) do
      advance st
    done
  end
  else
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
  let text = String.sub st.src start (st.pos - start) in
  match Int64.of_string_opt text with
  | Some v -> INT_LIT v
  | None -> fail st (Printf.sprintf "bad number %S" text)

let next_token st =
  skip_ws_and_comments st;
  let l = loc st in
  let tok =
    match peek st with
    | None -> EOF
    | Some c when is_digit c -> read_number st
    | Some c when is_ident_start c ->
        let start = st.pos in
        while (match peek st with Some c -> is_ident c | None -> false) do
          advance st
        done;
        let text = String.sub st.src start (st.pos - start) in
        (match keyword text with Some k -> k | None -> IDENT text)
    | Some '\'' ->
        advance st;
        let c =
          match peek st with
          | Some '\\' ->
              advance st;
              read_escape st
          | Some c ->
              advance st;
              c
          | None -> fail st "unterminated char literal"
        in
        (match peek st with
        | Some '\'' -> advance st
        | _ -> fail st "unterminated char literal");
        CHAR_LIT c
    | Some '"' ->
        advance st;
        let buf = Buffer.create 16 in
        let rec go () =
          match peek st with
          | Some '"' -> advance st
          | Some '\\' ->
              advance st;
              Buffer.add_char buf (read_escape st);
              go ()
          | Some c ->
              advance st;
              Buffer.add_char buf c;
              go ()
          | None -> fail st "unterminated string literal"
        in
        go ();
        STR_LIT (Buffer.contents buf)
    | Some c ->
        let two target tok1 tok0 =
          advance st;
          if peek st = Some target then begin
            advance st;
            tok1
          end
          else tok0
        in
        (match c with
        | '(' -> advance st; LPAREN
        | ')' -> advance st; RPAREN
        | '{' -> advance st; LBRACE
        | '}' -> advance st; RBRACE
        | '[' -> advance st; LBRACKET
        | ']' -> advance st; RBRACKET
        | ';' -> advance st; SEMI
        | ',' -> advance st; COMMA
        | '?' -> advance st; QUESTION
        | ':' -> advance st; COLON
        | '~' -> advance st; TILDE
        | '^' -> advance st; CARET
        | '%' -> advance st; PERCENT
        | '+' ->
            advance st;
            (match peek st with
            | Some '+' -> advance st; PLUSPLUS
            | Some '=' -> advance st; PLUSEQ
            | _ -> PLUS)
        | '-' ->
            advance st;
            (match peek st with
            | Some '-' -> advance st; MINUSMINUS
            | Some '=' -> advance st; MINUSEQ
            | _ -> MINUS)
        | '*' -> two '=' STAREQ STAR
        | '/' -> two '=' SLASHEQ SLASH
        | '!' -> two '=' NEQ BANG
        | '=' -> two '=' EQEQ ASSIGN
        | '&' -> two '&' ANDAND AMP
        | '|' -> two '|' OROR PIPE
        | '<' ->
            advance st;
            (match peek st with
            | Some '<' -> advance st; SHL
            | Some '=' -> advance st; LE
            | _ -> LT)
        | '>' ->
            advance st;
            (match peek st with
            | Some '>' -> advance st; SHR
            | Some '=' -> advance st; GE
            | _ -> GT)
        | c -> fail st (Printf.sprintf "unexpected character %C" c))
  in
  (tok, l)

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec go acc =
    let (tok, _) as t = next_token st in
    if tok = EOF then List.rev (t :: acc) else go (t :: acc)
  in
  go []
