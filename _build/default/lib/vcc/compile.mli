(** The vcc driver: the paper's clang-wrapper + LLVM-pass analogue.

    [compile] parses and checks a translation unit, finds every
    virtine-annotated function, cuts its call graph, and packages a
    self-contained image (crt0 + unmarshalling stub + reachable functions
    + libc + globals). Virtines get snapshotting by default, like the C
    extensions in §5.3 ("All virtines created via our language extensions
    use Wasp's snapshot feature by default"), which can be disabled per
    compile.

    The host-side call paths:
    - {!invoke} runs a virtine function under a {!Wasp.Runtime} with the
      policy derived from its annotation;
    - {!invoke_native} runs the same compiled code directly on a bare CPU
      with no virtualization, boot, or hypercall costs — the "native"
      baseline of Figures 11/13. *)

exception Compile_error of string

type virtine_info = {
  func : Ast.func;
  image : Wasp.Image.t;
  asm : Asm.program;
  policy : Wasp.Policy.t;   (** derived from the annotation; includes [snapshot] *)
  snapshot : bool;
}

type compiled

val compile :
  ?snapshot:bool ->
  ?mode:Vm.Modes.t ->
  ?mem_size:int ->
  ?name:string ->
  ?optimize:bool ->
  string ->
  compiled
(** Compile source text. [snapshot] (default true) controls the
    environment-variable opt-out the paper mentions. [mode] (default
    [Long]) selects the processor mode images boot to (Figure 3).
    [optimize] (default false) enables the {!Optim} passes (constant
    folding + peephole).
    @raise Compile_error (wrapping lexer/parser/sema/codegen errors). *)

val ast : compiled -> Ast.program
val virtines : compiled -> virtine_info list
val find_virtine : compiled -> string -> virtine_info option

val invoke :
  Wasp.Runtime.t ->
  compiled ->
  string ->
  int64 list ->
  ?handlers:(int -> Wasp.Inv.handler option) ->
  ?conn:Wasp.Hostenv.endpoint ->
  ?fuel:int ->
  unit ->
  Wasp.Runtime.result
(** Run an annotated function as a virtine. Raises [Not_found] if the
    function is not virtine-annotated. *)

val invoke_native :
  clock:Cycles.Clock.t -> compiled -> string -> int64 list -> ?fuel:int -> unit -> int64
(** Run the same function natively (bare CPU, no virtualization). Any
    function of the program (annotated or not) can be called; cycles are
    charged to [clock]. Raises [Compile_error] if the guest faults. *)
