exception Parse_error of { loc : Ast.loc; msg : string }

type state = { toks : (Lexer.token * Ast.loc) array; mutable cur : int }

let peek st = fst st.toks.(st.cur)
let peek_loc st = snd st.toks.(st.cur)

let peek2 st =
  if st.cur + 1 < Array.length st.toks then fst st.toks.(st.cur + 1) else Lexer.EOF

let advance st = if st.cur < Array.length st.toks - 1 then st.cur <- st.cur + 1

let fail st msg = raise (Parse_error { loc = peek_loc st; msg })

let expect st tok =
  if peek st = tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s but found %s" (Lexer.token_name tok)
         (Lexer.token_name (peek st)))

let expect_ident st =
  match peek st with
  | Lexer.IDENT name ->
      advance st;
      name
  | other -> fail st (Printf.sprintf "expected identifier, found %s" (Lexer.token_name other))

let mk st desc : Ast.expr = { desc; loc = peek_loc st; ty = Ast.Tvoid }

(* ------------------------------------------------------------------ *)
(* Types                                                                *)
(* ------------------------------------------------------------------ *)

let is_type_start = function
  | Lexer.KW_INT | Lexer.KW_CHAR | Lexer.KW_VOID | Lexer.KW_LONG -> true
  | _ -> false

let parse_base_type st =
  match peek st with
  | Lexer.KW_INT ->
      advance st;
      Ast.Tint
  | Lexer.KW_LONG ->
      advance st;
      (* accept "long" and "long long" as int *)
      if peek st = Lexer.KW_LONG then advance st;
      if peek st = Lexer.KW_INT then advance st;
      Ast.Tint
  | Lexer.KW_CHAR ->
      advance st;
      Ast.Tchar
  | Lexer.KW_VOID ->
      advance st;
      Ast.Tvoid
  | other -> fail st (Printf.sprintf "expected type, found %s" (Lexer.token_name other))

let parse_type st =
  let base = parse_base_type st in
  let rec stars t = if peek st = Lexer.STAR then (advance st; stars (Ast.Tptr t)) else t in
  stars base

(* ------------------------------------------------------------------ *)
(* Expressions (precedence climbing)                                    *)
(* ------------------------------------------------------------------ *)

let binop_of_token : Lexer.token -> (Ast.binop * int) option = function
  | Lexer.STAR -> Some (Ast.Mul, 10)
  | Lexer.SLASH -> Some (Ast.Div, 10)
  | Lexer.PERCENT -> Some (Ast.Rem, 10)
  | Lexer.PLUS -> Some (Ast.Add, 9)
  | Lexer.MINUS -> Some (Ast.Sub, 9)
  | Lexer.SHL -> Some (Ast.Shl, 8)
  | Lexer.SHR -> Some (Ast.Shr, 8)
  | Lexer.LT -> Some (Ast.Lt, 7)
  | Lexer.LE -> Some (Ast.Le, 7)
  | Lexer.GT -> Some (Ast.Gt, 7)
  | Lexer.GE -> Some (Ast.Ge, 7)
  | Lexer.EQEQ -> Some (Ast.Eq, 6)
  | Lexer.NEQ -> Some (Ast.Ne, 6)
  | Lexer.AMP -> Some (Ast.Band, 5)
  | Lexer.CARET -> Some (Ast.Bxor, 4)
  | Lexer.PIPE -> Some (Ast.Bor, 3)
  | Lexer.ANDAND -> Some (Ast.Land, 2)
  | Lexer.OROR -> Some (Ast.Lor, 1)
  | _ -> None

let rec parse_expr st = parse_assign st

and parse_assign st =
  let lhs = parse_ternary st in
  match peek st with
  | Lexer.ASSIGN ->
      advance st;
      let rhs = parse_assign st in
      { lhs with Ast.desc = Ast.Assign (lhs, rhs); ty = Ast.Tvoid }
  | Lexer.PLUSEQ | Lexer.MINUSEQ | Lexer.STAREQ | Lexer.SLASHEQ ->
      let op =
        match peek st with
        | Lexer.PLUSEQ -> Ast.Add
        | Lexer.MINUSEQ -> Ast.Sub
        | Lexer.STAREQ -> Ast.Mul
        | Lexer.SLASHEQ -> Ast.Div
        | _ -> assert false
      in
      advance st;
      let rhs = parse_assign st in
      let combined = { lhs with Ast.desc = Ast.Binary (op, lhs, rhs); ty = Ast.Tvoid } in
      { lhs with Ast.desc = Ast.Assign (lhs, combined); ty = Ast.Tvoid }
  | _ -> lhs

and parse_ternary st =
  let c = parse_binary st 1 in
  if peek st = Lexer.QUESTION then begin
    advance st;
    let a = parse_assign st in
    expect st Lexer.COLON;
    let b = parse_assign st in
    { c with Ast.desc = Ast.Cond (c, a, b); ty = Ast.Tvoid }
  end
  else c

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match binop_of_token (peek st) with
    | Some (op, prec) when prec >= min_prec ->
        advance st;
        let rhs = parse_binary st (prec + 1) in
        lhs := { !lhs with Ast.desc = Ast.Binary (op, !lhs, rhs); ty = Ast.Tvoid }
    | Some _ | None -> continue := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | Lexer.MINUS ->
      advance st;
      let e = parse_unary st in
      mk st (Ast.Unary (Ast.Neg, e))
  | Lexer.BANG ->
      advance st;
      let e = parse_unary st in
      mk st (Ast.Unary (Ast.Lognot, e))
  | Lexer.TILDE ->
      advance st;
      let e = parse_unary st in
      mk st (Ast.Unary (Ast.Bitnot, e))
  | Lexer.STAR ->
      advance st;
      let e = parse_unary st in
      mk st (Ast.Unary (Ast.Deref, e))
  | Lexer.AMP ->
      advance st;
      let e = parse_unary st in
      mk st (Ast.Unary (Ast.Addrof, e))
  | Lexer.PLUSPLUS ->
      (* ++x desugars to (x = x + 1) *)
      advance st;
      let e = parse_unary st in
      let one = mk st (Ast.Int_lit 1L) in
      let inc = mk st (Ast.Binary (Ast.Add, e, one)) in
      mk st (Ast.Assign (e, inc))
  | Lexer.MINUSMINUS ->
      advance st;
      let e = parse_unary st in
      let one = mk st (Ast.Int_lit 1L) in
      let dec = mk st (Ast.Binary (Ast.Sub, e, one)) in
      mk st (Ast.Assign (e, dec))
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.LBRACKET ->
        advance st;
        let idx = parse_expr st in
        expect st Lexer.RBRACKET;
        e := { !e with Ast.desc = Ast.Index (!e, idx); ty = Ast.Tvoid }
    | Lexer.PLUSPLUS ->
        (* x++ desugared to ((x = x + 1) - 1): result is the old value *)
        advance st;
        let one = { !e with Ast.desc = Ast.Int_lit 1L; ty = Ast.Tvoid } in
        let inc = { !e with Ast.desc = Ast.Binary (Ast.Add, !e, one); ty = Ast.Tvoid } in
        let asg = { !e with Ast.desc = Ast.Assign (!e, inc); ty = Ast.Tvoid } in
        e := { !e with Ast.desc = Ast.Binary (Ast.Sub, asg, one); ty = Ast.Tvoid }
    | Lexer.MINUSMINUS ->
        advance st;
        let one = { !e with Ast.desc = Ast.Int_lit 1L; ty = Ast.Tvoid } in
        let dec = { !e with Ast.desc = Ast.Binary (Ast.Sub, !e, one); ty = Ast.Tvoid } in
        let asg = { !e with Ast.desc = Ast.Assign (!e, dec); ty = Ast.Tvoid } in
        e := { !e with Ast.desc = Ast.Binary (Ast.Add, asg, one); ty = Ast.Tvoid }
    | _ -> continue := false
  done;
  !e

and parse_primary st =
  match peek st with
  | Lexer.INT_LIT v ->
      let e = mk st (Ast.Int_lit v) in
      advance st;
      e
  | Lexer.CHAR_LIT c ->
      let e = mk st (Ast.Char_lit c) in
      advance st;
      e
  | Lexer.STR_LIT s ->
      let e = mk st (Ast.Str_lit s) in
      advance st;
      e
  | Lexer.IDENT name ->
      if peek2 st = Lexer.LPAREN then begin
        let loc = peek_loc st in
        advance st;
        advance st;
        let args = ref [] in
        if peek st <> Lexer.RPAREN then begin
          args := [ parse_expr st ];
          while peek st = Lexer.COMMA do
            advance st;
            args := parse_expr st :: !args
          done
        end;
        expect st Lexer.RPAREN;
        { Ast.desc = Ast.Call (name, List.rev !args); loc; ty = Ast.Tvoid }
      end
      else begin
        let e = mk st (Ast.Var name) in
        advance st;
        e
      end
  | Lexer.KW_SIZEOF ->
      advance st;
      expect st Lexer.LPAREN;
      let ty = parse_type st in
      (* sizeof(T[N]) *)
      let ty =
        if peek st = Lexer.LBRACKET then begin
          advance st;
          match peek st with
          | Lexer.INT_LIT n ->
              advance st;
              expect st Lexer.RBRACKET;
              Ast.Tarray (ty, Int64.to_int n)
          | _ -> fail st "expected array length in sizeof"
        end
        else ty
      in
      expect st Lexer.RPAREN;
      mk st (Ast.Int_lit (Int64.of_int (Ast.sizeof ty)))
  | Lexer.LPAREN ->
      advance st;
      (* parenthesized expression; also swallow C-style casts "(int)e" and
         "(char*)e" by re-parsing as the inner expression. *)
      if is_type_start (peek st) then begin
        let _ty = parse_type st in
        expect st Lexer.RPAREN;
        parse_unary st
      end
      else begin
        let e = parse_expr st in
        expect st Lexer.RPAREN;
        e
      end
  | other -> fail st (Printf.sprintf "expected expression, found %s" (Lexer.token_name other))

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)
(* ------------------------------------------------------------------ *)

let rec parse_stmt st : Ast.stmt =
  match peek st with
  | Lexer.LBRACE ->
      advance st;
      let body = parse_stmts_until_rbrace st in
      Ast.Block body
  | Lexer.KW_IF ->
      advance st;
      expect st Lexer.LPAREN;
      let cond = parse_expr st in
      expect st Lexer.RPAREN;
      let then_ = parse_block_or_stmt st in
      let else_ =
        if peek st = Lexer.KW_ELSE then begin
          advance st;
          parse_block_or_stmt st
        end
        else []
      in
      Ast.If (cond, then_, else_)
  | Lexer.KW_WHILE ->
      advance st;
      expect st Lexer.LPAREN;
      let cond = parse_expr st in
      expect st Lexer.RPAREN;
      Ast.While (cond, parse_block_or_stmt st)
  | Lexer.KW_DO ->
      advance st;
      let body = parse_block_or_stmt st in
      (match peek st with
      | Lexer.KW_WHILE -> advance st
      | other -> fail st (Printf.sprintf "expected 'while', found %s" (Lexer.token_name other)));
      expect st Lexer.LPAREN;
      let cond = parse_expr st in
      expect st Lexer.RPAREN;
      expect st Lexer.SEMI;
      Ast.Dowhile (body, cond)
  | Lexer.KW_FOR ->
      advance st;
      expect st Lexer.LPAREN;
      let init =
        if peek st = Lexer.SEMI then None
        else if is_type_start (peek st) then Some (parse_decl st)
        else Some (Ast.Expr (parse_expr st))
      in
      expect st Lexer.SEMI;
      let cond = if peek st = Lexer.SEMI then None else Some (parse_expr st) in
      expect st Lexer.SEMI;
      let step = if peek st = Lexer.RPAREN then None else Some (parse_expr st) in
      expect st Lexer.RPAREN;
      Ast.For (init, cond, step, parse_block_or_stmt st)
  | Lexer.KW_RETURN ->
      let loc = peek_loc st in
      advance st;
      let e = if peek st = Lexer.SEMI then None else Some (parse_expr st) in
      expect st Lexer.SEMI;
      Ast.Return (e, loc)
  | Lexer.KW_BREAK ->
      let loc = peek_loc st in
      advance st;
      expect st Lexer.SEMI;
      Ast.Break loc
  | Lexer.KW_CONTINUE ->
      let loc = peek_loc st in
      advance st;
      expect st Lexer.SEMI;
      Ast.Continue loc
  | t when is_type_start t ->
      let d = parse_decl st in
      expect st Lexer.SEMI;
      d
  | _ ->
      let e = parse_expr st in
      expect st Lexer.SEMI;
      Ast.Expr e

and parse_decl st : Ast.stmt =
  let loc = peek_loc st in
  let ty = parse_type st in
  let name = expect_ident st in
  let ty =
    if peek st = Lexer.LBRACKET then begin
      advance st;
      match peek st with
      | Lexer.INT_LIT n ->
          advance st;
          expect st Lexer.RBRACKET;
          Ast.Tarray (ty, Int64.to_int n)
      | _ -> fail st "expected array length"
    end
    else ty
  in
  let init =
    if peek st = Lexer.ASSIGN then begin
      advance st;
      Some (parse_expr st)
    end
    else None
  in
  Ast.Decl (ty, name, init, loc)

and parse_block_or_stmt st =
  if peek st = Lexer.LBRACE then begin
    advance st;
    parse_stmts_until_rbrace st
  end
  else [ parse_stmt st ]

and parse_stmts_until_rbrace st =
  let acc = ref [] in
  while peek st <> Lexer.RBRACE do
    if peek st = Lexer.EOF then fail st "unexpected end of input in block";
    acc := parse_stmt st :: !acc
  done;
  advance st;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Top level                                                            *)
(* ------------------------------------------------------------------ *)

let parse_annotation st : Ast.annotation =
  match peek st with
  | Lexer.KW_VIRTINE ->
      advance st;
      Ast.Virtine
  | Lexer.KW_VIRTINE_PERMISSIVE ->
      advance st;
      Ast.Virtine_permissive
  | Lexer.KW_VIRTINE_CONFIG ->
      advance st;
      expect st Lexer.LPAREN;
      let mask =
        match peek st with
        | Lexer.INT_LIT v ->
            advance st;
            v
        | _ -> fail st "virtine_config expects an integer bitmask"
      in
      expect st Lexer.RPAREN;
      Ast.Virtine_config mask
  | _ -> Ast.Not_virtine

let parse_global_init st ty : Ast.init =
  match (peek st, ty) with
  | Lexer.LBRACE, _ ->
      advance st;
      let vals = ref [] in
      if peek st <> Lexer.RBRACE then begin
        let read_val () =
          match peek st with
          | Lexer.INT_LIT v ->
              advance st;
              v
          | Lexer.MINUS ->
              advance st;
              (match peek st with
              | Lexer.INT_LIT v ->
                  advance st;
                  Int64.neg v
              | _ -> fail st "expected integer in initializer")
          | Lexer.CHAR_LIT c ->
              advance st;
              Int64.of_int (Char.code c)
          | _ -> fail st "expected constant in array initializer"
        in
        vals := [ read_val () ];
        while peek st = Lexer.COMMA do
          advance st;
          if peek st <> Lexer.RBRACE then vals := read_val () :: !vals
        done
      end;
      expect st Lexer.RBRACE;
      Ast.Array_init (List.rev !vals)
  | Lexer.STR_LIT s, _ ->
      advance st;
      Ast.String_init s
  | Lexer.INT_LIT v, _ ->
      advance st;
      Ast.Scalar v
  | Lexer.MINUS, _ ->
      advance st;
      (match peek st with
      | Lexer.INT_LIT v ->
          advance st;
          Ast.Scalar (Int64.neg v)
      | _ -> fail st "expected integer")
  | Lexer.CHAR_LIT c, _ ->
      advance st;
      Ast.Scalar (Int64.of_int (Char.code c))
  | _ -> fail st "global initializers must be constants"

let parse_program st : Ast.program =
  let globals = ref [] and funcs = ref [] in
  while peek st <> Lexer.EOF do
    let loc = peek_loc st in
    let annot = parse_annotation st in
    let ty = parse_type st in
    let name = expect_ident st in
    match peek st with
    | Lexer.LPAREN ->
        advance st;
        let params = ref [] in
        if peek st <> Lexer.RPAREN then begin
          if peek st = Lexer.KW_VOID && peek2 st = Lexer.RPAREN then advance st
          else begin
            let read_param () =
              let pty = parse_type st in
              let pname = expect_ident st in
              (pty, pname)
            in
            params := [ read_param () ];
            while peek st = Lexer.COMMA do
              advance st;
              params := read_param () :: !params
            done
          end
        end;
        expect st Lexer.RPAREN;
        expect st Lexer.LBRACE;
        let body = parse_stmts_until_rbrace st in
        funcs :=
          {
            Ast.fname = name;
            annot;
            ret = ty;
            params = List.rev !params;
            body;
            floc = loc;
          }
          :: !funcs
    | _ ->
        if annot <> Ast.Not_virtine then fail st "virtine annotation on a non-function";
        let ty =
          if peek st = Lexer.LBRACKET then begin
            advance st;
            match peek st with
            | Lexer.INT_LIT n ->
                advance st;
                expect st Lexer.RBRACKET;
                Ast.Tarray (ty, Int64.to_int n)
            | _ -> fail st "expected array length"
          end
          else ty
        in
        let init =
          if peek st = Lexer.ASSIGN then begin
            advance st;
            Some (parse_global_init st ty)
          end
          else None
        in
        expect st Lexer.SEMI;
        globals := { Ast.gname = name; gty = ty; init; gloc = loc } :: !globals
  done;
  { Ast.globals = List.rev !globals; funcs = List.rev !funcs }

let parse src =
  let toks = Array.of_list (Lexer.tokenize src) in
  parse_program { toks; cur = 0 }

let parse_expr_string src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; cur = 0 } in
  let e = parse_expr st in
  if peek st <> Lexer.EOF then fail st "trailing tokens after expression";
  e
