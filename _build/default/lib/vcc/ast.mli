(** Abstract syntax for the virtine C dialect.

    The language is the C subset the paper's examples use — integers,
    chars, pointers, arrays, the usual operators and control flow — plus
    the virtine extensions of §5.3: [virtine], [virtine_permissive] and
    [virtine_config(mask)] function annotations. *)

type loc = { line : int; col : int }

val pp_loc : Format.formatter -> loc -> unit

type ty =
  | Tvoid
  | Tint        (** 64-bit signed *)
  | Tchar       (** 8-bit unsigned in memory, widened in registers *)
  | Tptr of ty
  | Tarray of ty * int

val sizeof : ty -> int
val ty_equal : ty -> ty -> bool
val pp_ty : Format.formatter -> ty -> unit

type unop = Neg | Lognot | Bitnot | Deref | Addrof

type binop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | Land | Lor

type expr = { desc : expr_desc; loc : loc; mutable ty : ty }
(** [ty] is filled in by semantic analysis (initially [Tvoid]). *)

and expr_desc =
  | Int_lit of int64
  | Char_lit of char
  | Str_lit of string        (** decays to [char*] pointing at image data *)
  | Var of string
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Assign of expr * expr    (** lhs must be an lvalue *)
  | Call of string * expr list
  | Index of expr * expr     (** a[i] *)
  | Cond of expr * expr * expr  (** c ? a : b *)

type stmt =
  | Expr of expr
  | Decl of ty * string * expr option * loc
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Dowhile of stmt list * expr
  | For of stmt option * expr option * expr option * stmt list
  | Return of expr option * loc
  | Break of loc
  | Continue of loc
  | Block of stmt list

(** Virtine annotation on a function (§5.3). *)
type annotation =
  | Not_virtine
  | Virtine                      (** default-deny policy *)
  | Virtine_permissive           (** all hypercalls permitted *)
  | Virtine_config of int64      (** bitmask of permitted hypercalls *)

type func = {
  fname : string;
  annot : annotation;
  ret : ty;
  params : (ty * string) list;
  body : stmt list;
  floc : loc;
}

type global = {
  gname : string;
  gty : ty;
  init : init option;
  gloc : loc;
}

and init =
  | Scalar of int64
  | Array_init of int64 list
  | String_init of string

type program = { globals : global list; funcs : func list }

val find_func : program -> string -> func option
