type reachable = { funcs : string list; globals : string list; builtins : string list }

let rec expr_refs (e : Ast.expr) ~on_call ~on_var =
  match e.desc with
  | Ast.Int_lit _ | Ast.Char_lit _ | Ast.Str_lit _ -> ()
  | Ast.Var v -> on_var v
  | Ast.Unary (_, a) -> expr_refs a ~on_call ~on_var
  | Ast.Binary (_, a, b) ->
      expr_refs a ~on_call ~on_var;
      expr_refs b ~on_call ~on_var
  | Ast.Assign (a, b) ->
      expr_refs a ~on_call ~on_var;
      expr_refs b ~on_call ~on_var
  | Ast.Call (f, args) ->
      on_call f;
      List.iter (fun a -> expr_refs a ~on_call ~on_var) args
  | Ast.Index (a, i) ->
      expr_refs a ~on_call ~on_var;
      expr_refs i ~on_call ~on_var
  | Ast.Cond (c, a, b) ->
      expr_refs c ~on_call ~on_var;
      expr_refs a ~on_call ~on_var;
      expr_refs b ~on_call ~on_var

let rec stmt_refs (s : Ast.stmt) ~on_call ~on_var =
  let expr e = expr_refs e ~on_call ~on_var in
  match s with
  | Ast.Expr e -> expr e
  | Ast.Decl (_, _, init, _) -> Option.iter expr init
  | Ast.If (c, t, f) ->
      expr c;
      List.iter (fun s -> stmt_refs s ~on_call ~on_var) t;
      List.iter (fun s -> stmt_refs s ~on_call ~on_var) f
  | Ast.While (c, body) | Ast.Dowhile (body, c) ->
      expr c;
      List.iter (fun s -> stmt_refs s ~on_call ~on_var) body
  | Ast.For (init, cond, step, body) ->
      Option.iter (fun s -> stmt_refs s ~on_call ~on_var) init;
      Option.iter expr cond;
      Option.iter expr step;
      List.iter (fun s -> stmt_refs s ~on_call ~on_var) body
  | Ast.Return (e, _) -> Option.iter expr e
  | Ast.Break _ | Ast.Continue _ -> ()
  | Ast.Block body -> List.iter (fun s -> stmt_refs s ~on_call ~on_var) body

let from (prog : Ast.program) ~root =
  (match Ast.find_func prog root with
  | Some _ -> ()
  | None -> invalid_arg (Printf.sprintf "Callgraph.from: no function %s" root));
  let seen_funcs = Hashtbl.create 8 in
  let order = ref [] in
  let globals = Hashtbl.create 8 in
  let builtins = Hashtbl.create 8 in
  let global_names =
    List.fold_left
      (fun acc (g : Ast.global) -> g.gname :: acc)
      [] prog.globals
  in
  let rec visit name =
    if not (Hashtbl.mem seen_funcs name) then begin
      Hashtbl.replace seen_funcs name ();
      match Ast.find_func prog name with
      | None -> ()
      | Some f ->
          order := name :: !order;
          let locals = Hashtbl.create 8 in
          List.iter (fun (_, p) -> Hashtbl.replace locals p ()) f.params;
          (* locals declared in the body shadow globals; a precise
             treatment would be scope-aware, but collecting declared names
             first errs on the side of including the global, which is
             always safe. *)
          let on_var v =
            if (not (Hashtbl.mem locals v)) && List.mem v global_names then
              Hashtbl.replace globals v ()
          in
          let on_call callee =
            if Ast.find_func prog callee <> None then visit callee
            else if Vlibc.is_builtin callee then Hashtbl.replace builtins callee ()
          in
          List.iter (fun s -> stmt_refs s ~on_call ~on_var) f.body
    end
  in
  visit root;
  {
    funcs = List.rev !order;
    globals =
      List.filter (fun g -> Hashtbl.mem globals g) (List.rev global_names)
      |> List.sort_uniq compare;
    builtins = Hashtbl.fold (fun k () acc -> k :: acc) builtins [] |> List.sort compare;
  }

let virtine_roots (prog : Ast.program) =
  List.filter (fun (f : Ast.func) -> f.annot <> Ast.Not_virtine) prog.funcs
