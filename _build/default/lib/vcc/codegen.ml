exception Codegen_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Codegen_error s)) fmt

let global_label name = "g_" ^ name
let function_label name = "fn_" ^ name

let label_counter = ref 0

let fresh_label prefix =
  incr label_counter;
  Printf.sprintf ".L%s%d" prefix !label_counter

(* width of a memory access for a value of this type *)
let access_width : Ast.ty -> Instr.width = function
  | Ast.Tchar -> Instr.W8
  | Ast.Tint | Ast.Tptr _ | Ast.Tarray _ | Ast.Tvoid -> Instr.W64

let elem_size = function
  | Ast.Tptr t -> Ast.sizeof t
  | Ast.Tarray (t, _) -> Ast.sizeof t
  | Ast.Tint | Ast.Tchar | Ast.Tvoid -> 1

type frame = {
  slots : (string, int) Hashtbl.t list ref;  (** scope stack: name -> fp offset *)
  mutable next_offset : int;                  (** bytes allocated so far *)
  frame_size : int;
  epilogue : string;
  mutable loop_labels : (string * string) list;  (** (break, continue) *)
}

let push_scope fr = fr.slots := Hashtbl.create 8 :: !(fr.slots)
let pop_scope fr = fr.slots := List.tl !(fr.slots)

let declare_slot fr name size =
  let aligned = (size + 7) land lnot 7 in
  fr.next_offset <- fr.next_offset + aligned;
  if fr.next_offset > fr.frame_size then fail "frame overflow for %s" name;
  (match !(fr.slots) with
  | scope :: _ -> Hashtbl.replace scope name fr.next_offset
  | [] -> fail "no scope");
  fr.next_offset

let lookup_slot fr name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        match Hashtbl.find_opt scope name with Some o -> Some o | None -> go rest)
  in
  go !(fr.slots)

(* pre-scan: total bytes of locals (params + every declaration site) *)
let rec stmt_frame_bytes (s : Ast.stmt) =
  match s with
  | Ast.Decl (ty, _, _, _) -> (Ast.sizeof ty + 7) land lnot 7
  | Ast.If (_, t, f) -> List.fold_left (fun a s -> a + stmt_frame_bytes s) 0 (t @ f)
  | Ast.While (_, b) | Ast.Dowhile (b, _) | Ast.Block b ->
      List.fold_left (fun a s -> a + stmt_frame_bytes s) 0 b
  | Ast.For (init, _, _, b) ->
      (match init with Some s -> stmt_frame_bytes s | None -> 0)
      + List.fold_left (fun a s -> a + stmt_frame_bytes s) 0 b
  | Ast.Expr _ | Ast.Return _ | Ast.Break _ | Ast.Continue _ -> 0

let func_frame_bytes (f : Ast.func) =
  List.fold_left (fun a (ty, _) -> a + ((Ast.sizeof ty + 7) land lnot 7)) 0 f.params
  + List.fold_left (fun a s -> a + stmt_frame_bytes s) 0 f.body

(* emission buffer *)
type emitter = { mutable items : Asm.item list }

let emit em i = em.items <- Asm.Insn i :: em.items
let emit_label em l = em.items <- Asm.Label l :: em.items
let emit_item em it = em.items <- it :: em.items

open Asm

let r0 = 0
let r1 = 1
let fp = 13

(* string literals are pooled per image *)
type strings = { mutable pool : (string * string) list (* label, contents *) }

let string_label strings s =
  match List.find_opt (fun (_, c) -> c = s) strings.pool with
  | Some (l, _) -> l
  | None ->
      let l = fresh_label "str" in
      strings.pool <- (l, s) :: strings.pool;
      l

type ctx = {
  prog : Ast.program;
  em : emitter;
  fr : frame;
  strings : strings;
  global_names : string list;
}

(* leave the address of an lvalue in r0 *)
let rec gen_addr ctx (e : Ast.expr) =
  match e.desc with
  | Ast.Var name -> (
      match lookup_slot ctx.fr name with
      | Some off -> emit ctx.em (SLea (r0, fp, -off))
      | None ->
          if List.mem name ctx.global_names then
            emit ctx.em (SMov (r0, OLbl (global_label name)))
          else fail "codegen: unknown variable %s" name)
  | Ast.Unary (Ast.Deref, p) -> gen_expr ctx p
  | Ast.Index (a, i) ->
      let size = elem_size a.Ast.ty in
      gen_expr ctx a;
      (* a decays to a pointer value *)
      emit ctx.em (SPush (OReg r0));
      gen_expr ctx i;
      if size <> 1 then emit ctx.em (SBin (Instr.Mul, r0, OImm (Int64.of_int size)));
      emit ctx.em (SPop r1);
      emit ctx.em (SBin (Instr.Add, r0, OReg r1))
  | _ -> fail "codegen: not an lvalue"

(* evaluate an expression into r0 *)
and gen_expr ctx (e : Ast.expr) =
  match e.desc with
  | Ast.Int_lit v -> emit ctx.em (SMov (r0, OImm v))
  | Ast.Char_lit c -> emit ctx.em (SMov (r0, OImm (Int64.of_int (Char.code c))))
  | Ast.Str_lit s -> emit ctx.em (SMov (r0, OLbl (string_label ctx.strings s)))
  | Ast.Var name -> (
      match e.ty with
      | Ast.Tarray _ ->
          (* arrays decay to their address *)
          gen_addr_of_array ctx name
      | ty ->
          gen_addr ctx e;
          emit ctx.em (SMov (r1, OReg r0));
          emit ctx.em (SLoad (access_width ty, r0, r1, 0)))
  | Ast.Unary (Ast.Neg, a) ->
      gen_expr ctx a;
      emit ctx.em (SNeg r0)
  | Ast.Unary (Ast.Bitnot, a) ->
      gen_expr ctx a;
      emit ctx.em (SNot r0)
  | Ast.Unary (Ast.Lognot, a) ->
      gen_expr ctx a;
      let l = fresh_label "not" in
      emit ctx.em (SCmp (r0, OImm 0L));
      emit ctx.em (SMov (r0, OImm 1L));
      emit ctx.em (SJcc (Instr.Eq, Lbl l));
      emit ctx.em (SMov (r0, OImm 0L));
      emit_label ctx.em l
  | Ast.Unary (Ast.Deref, p) ->
      gen_expr ctx p;
      emit ctx.em (SMov (r1, OReg r0));
      emit ctx.em (SLoad (access_width e.ty, r0, r1, 0))
  | Ast.Unary (Ast.Addrof, a) -> gen_addr_or_array ctx a
  | Ast.Binary (op, a, b) -> gen_binary ctx e.ty op a b
  | Ast.Assign (lhs, rhs) ->
      gen_expr ctx rhs;
      emit ctx.em (SPush (OReg r0));
      gen_addr ctx lhs;
      emit ctx.em (SMov (r1, OReg r0));
      emit ctx.em (SPop r0);
      emit ctx.em (SStore (access_width lhs.Ast.ty, r1, 0, OReg r0))
      (* result: the assigned value, already in r0 *)
  | Ast.Call (name, args) -> gen_call ctx name args
  | Ast.Index (a, i) ->
      gen_addr ctx { e with desc = Ast.Index (a, i) };
      emit ctx.em (SMov (r1, OReg r0));
      emit ctx.em (SLoad (access_width e.ty, r0, r1, 0))
  | Ast.Cond (c, a, b) ->
      let lfalse = fresh_label "celse" and lend = fresh_label "cend" in
      gen_expr ctx c;
      emit ctx.em (SCmp (r0, OImm 0L));
      emit ctx.em (SJcc (Instr.Eq, Lbl lfalse));
      gen_expr ctx a;
      emit ctx.em (SJmp (Lbl lend));
      emit_label ctx.em lfalse;
      gen_expr ctx b;
      emit_label ctx.em lend

and gen_addr_of_array ctx name =
  match lookup_slot ctx.fr name with
  | Some off -> emit ctx.em (SLea (r0, fp, -off))
  | None ->
      if List.mem name ctx.global_names then
        emit ctx.em (SMov (r0, OLbl (global_label name)))
      else fail "codegen: unknown array %s" name

and gen_addr_or_array ctx (a : Ast.expr) =
  match (a.desc, a.ty) with
  | Ast.Var name, Ast.Tarray _ -> gen_addr_of_array ctx name
  | _ -> gen_addr ctx a

and gen_binary ctx _ty op a b =
  match op with
  | Ast.Land ->
      let lfalse = fresh_label "andf" and lend = fresh_label "ande" in
      gen_expr ctx a;
      emit ctx.em (SCmp (r0, OImm 0L));
      emit ctx.em (SJcc (Instr.Eq, Lbl lfalse));
      gen_expr ctx b;
      emit ctx.em (SCmp (r0, OImm 0L));
      emit ctx.em (SJcc (Instr.Eq, Lbl lfalse));
      emit ctx.em (SMov (r0, OImm 1L));
      emit ctx.em (SJmp (Lbl lend));
      emit_label ctx.em lfalse;
      emit ctx.em (SMov (r0, OImm 0L));
      emit_label ctx.em lend
  | Ast.Lor ->
      let ltrue = fresh_label "ort" and lend = fresh_label "ore" in
      gen_expr ctx a;
      emit ctx.em (SCmp (r0, OImm 0L));
      emit ctx.em (SJcc (Instr.Ne, Lbl ltrue));
      gen_expr ctx b;
      emit ctx.em (SCmp (r0, OImm 0L));
      emit ctx.em (SJcc (Instr.Ne, Lbl ltrue));
      emit ctx.em (SMov (r0, OImm 0L));
      emit ctx.em (SJmp (Lbl lend));
      emit_label ctx.em ltrue;
      emit ctx.em (SMov (r0, OImm 1L));
      emit_label ctx.em lend
  | _ ->
      (* pointer arithmetic scaling (C semantics) *)
      let a_ptr = match a.Ast.ty with Ast.Tptr _ | Ast.Tarray _ -> true | _ -> false in
      let b_ptr = match b.Ast.ty with Ast.Tptr _ | Ast.Tarray _ -> true | _ -> false in
      gen_expr ctx a;
      (if a_ptr && (not b_ptr) && (op = Ast.Add || op = Ast.Sub) then begin
         let sz = elem_size a.Ast.ty in
         emit ctx.em (SPush (OReg r0));
         gen_expr ctx b;
         if sz <> 1 then emit ctx.em (SBin (Instr.Mul, r0, OImm (Int64.of_int sz)));
         emit ctx.em (SMov (r1, OReg r0));
         emit ctx.em (SPop r0)
       end
       else if b_ptr && (not a_ptr) && op = Ast.Add then begin
         (* int + ptr: scale the int side (currently in r0) *)
         let sz = elem_size b.Ast.ty in
         if sz <> 1 then emit ctx.em (SBin (Instr.Mul, r0, OImm (Int64.of_int sz)));
         emit ctx.em (SPush (OReg r0));
         gen_expr ctx b;
         emit ctx.em (SMov (r1, OReg r0));
         emit ctx.em (SPop r0)
       end
       else begin
         emit ctx.em (SPush (OReg r0));
         gen_expr ctx b;
         emit ctx.em (SMov (r1, OReg r0));
         emit ctx.em (SPop r0)
       end);
      (* r0 = a(scaled appropriately), r1 = b *)
      let simple instr_op = emit ctx.em (SBin (instr_op, r0, OReg r1)) in
      (match op with
      | Ast.Add -> simple Instr.Add
      | Ast.Sub ->
          simple Instr.Sub;
          if a_ptr && b_ptr then begin
            let sz = elem_size a.Ast.ty in
            if sz <> 1 then emit ctx.em (SBin (Instr.Div, r0, OImm (Int64.of_int sz)))
          end
      | Ast.Mul -> simple Instr.Mul
      | Ast.Div -> simple Instr.Div
      | Ast.Rem -> simple Instr.Rem
      | Ast.Band -> simple Instr.And
      | Ast.Bor -> simple Instr.Or
      | Ast.Bxor -> simple Instr.Xor
      | Ast.Shl -> simple Instr.Shl
      | Ast.Shr -> simple Instr.Shr
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne ->
          let cond : Instr.cond =
            match op with
            | Ast.Lt -> Instr.Lt
            | Ast.Le -> Instr.Le
            | Ast.Gt -> Instr.Gt
            | Ast.Ge -> Instr.Ge
            | Ast.Eq -> Instr.Eq
            | Ast.Ne -> Instr.Ne
            | _ -> assert false
          in
          let l = fresh_label "cmp" in
          emit ctx.em (SCmp (r0, OReg r1));
          emit ctx.em (SMov (r0, OImm 1L));
          emit ctx.em (SJcc (cond, Lbl l));
          emit ctx.em (SMov (r0, OImm 0L));
          emit_label ctx.em l
      | Ast.Land | Ast.Lor -> assert false)

and gen_call ctx name args =
  (* evaluate arguments left to right onto the stack *)
  List.iter
    (fun a ->
      gen_expr ctx a;
      emit ctx.em (SPush (OReg r0)))
    args;
  let n = List.length args in
  match Ast.find_func ctx.prog name with
  | Some _ ->
      (* program function: args in r0..r5 *)
      if n > 6 then fail "too many arguments to %s" name;
      for i = n - 1 downto 0 do
        emit ctx.em (SPop i)
      done;
      emit ctx.em (SCall (Lbl (function_label name)))
  | None -> (
      match Vlibc.lookup name with
      | None -> fail "codegen: unknown function %s" name
      | Some { kind = Vlibc.Hypercall nr; _ } ->
          (* hypercall ABI: number in r0, args in r1..r5 *)
          if n > 5 then fail "too many hypercall arguments to %s" name;
          for i = n downto 1 do
            emit ctx.em (SPop i)
          done;
          emit ctx.em (SMov (r0, OImm (Int64.of_int nr)));
          emit ctx.em (SOut (Wasp.Hc.port, OReg r0))
      | Some { kind = Vlibc.Inline_rdtsc; _ } -> emit ctx.em (SRdtsc r0)
      | Some { kind = Vlibc.Library; _ } ->
          if n > 6 then fail "too many arguments to %s" name;
          for i = n - 1 downto 0 do
            emit ctx.em (SPop i)
          done;
          emit ctx.em (SCall (Lbl ("__vl_" ^ name))))

let rec gen_stmt ctx (s : Ast.stmt) =
  match s with
  | Ast.Expr e -> gen_expr ctx e
  | Ast.Decl (ty, name, init, _) -> (
      let off = declare_slot ctx.fr name (Ast.sizeof ty) in
      match init with
      | None -> ()
      | Some e -> (
          match ty with
          | Ast.Tarray _ -> fail "array initializers on locals are not supported"
          | _ ->
              gen_expr ctx e;
              emit ctx.em (SStore (access_width ty, fp, -off, OReg r0))))
  | Ast.If (c, t, f) ->
      let lelse = fresh_label "else" and lend = fresh_label "fi" in
      gen_expr ctx c;
      emit ctx.em (SCmp (r0, OImm 0L));
      emit ctx.em (SJcc (Instr.Eq, Lbl lelse));
      push_scope ctx.fr;
      List.iter (gen_stmt ctx) t;
      pop_scope ctx.fr;
      emit ctx.em (SJmp (Lbl lend));
      emit_label ctx.em lelse;
      push_scope ctx.fr;
      List.iter (gen_stmt ctx) f;
      pop_scope ctx.fr;
      emit_label ctx.em lend
  | Ast.While (c, body) ->
      let ltop = fresh_label "wtop" and lend = fresh_label "wend" in
      emit_label ctx.em ltop;
      gen_expr ctx c;
      emit ctx.em (SCmp (r0, OImm 0L));
      emit ctx.em (SJcc (Instr.Eq, Lbl lend));
      ctx.fr.loop_labels <- (lend, ltop) :: ctx.fr.loop_labels;
      push_scope ctx.fr;
      List.iter (gen_stmt ctx) body;
      pop_scope ctx.fr;
      ctx.fr.loop_labels <- List.tl ctx.fr.loop_labels;
      emit ctx.em (SJmp (Lbl ltop));
      emit_label ctx.em lend
  | Ast.Dowhile (body, c) ->
      (* body runs at least once; continue re-tests the condition *)
      let ltop = fresh_label "dtop"
      and lcond = fresh_label "dcond"
      and lend = fresh_label "dend" in
      emit_label ctx.em ltop;
      ctx.fr.loop_labels <- (lend, lcond) :: ctx.fr.loop_labels;
      push_scope ctx.fr;
      List.iter (gen_stmt ctx) body;
      pop_scope ctx.fr;
      ctx.fr.loop_labels <- List.tl ctx.fr.loop_labels;
      emit_label ctx.em lcond;
      gen_expr ctx c;
      emit ctx.em (SCmp (r0, OImm 0L));
      emit ctx.em (SJcc (Instr.Ne, Lbl ltop));
      emit_label ctx.em lend
  | Ast.For (init, cond, step, body) ->
      let ltop = fresh_label "ftop"
      and lstep = fresh_label "fstep"
      and lend = fresh_label "fend" in
      push_scope ctx.fr;
      (match init with Some s -> gen_stmt ctx s | None -> ());
      emit_label ctx.em ltop;
      (match cond with
      | Some c ->
          gen_expr ctx c;
          emit ctx.em (SCmp (r0, OImm 0L));
          emit ctx.em (SJcc (Instr.Eq, Lbl lend))
      | None -> ());
      ctx.fr.loop_labels <- (lend, lstep) :: ctx.fr.loop_labels;
      push_scope ctx.fr;
      List.iter (gen_stmt ctx) body;
      pop_scope ctx.fr;
      ctx.fr.loop_labels <- List.tl ctx.fr.loop_labels;
      emit_label ctx.em lstep;
      (match step with Some e -> gen_expr ctx e | None -> ());
      emit ctx.em (SJmp (Lbl ltop));
      emit_label ctx.em lend;
      pop_scope ctx.fr
  | Ast.Return (e, _) ->
      (match e with Some e -> gen_expr ctx e | None -> emit ctx.em (SMov (r0, OImm 0L)));
      emit ctx.em (SJmp (Lbl ctx.fr.epilogue))
  | Ast.Break loc -> (
      match ctx.fr.loop_labels with
      | (lend, _) :: _ -> emit ctx.em (SJmp (Lbl lend))
      | [] -> fail "break outside loop at %s" (Format.asprintf "%a" Ast.pp_loc loc))
  | Ast.Continue loc -> (
      match ctx.fr.loop_labels with
      | (_, lcont) :: _ -> emit ctx.em (SJmp (Lbl lcont))
      | [] -> fail "continue outside loop at %s" (Format.asprintf "%a" Ast.pp_loc loc))
  | Ast.Block body ->
      push_scope ctx.fr;
      List.iter (gen_stmt ctx) body;
      pop_scope ctx.fr

let gen_function_with prog strings (f : Ast.func) : Asm.item list =
  let frame_size = func_frame_bytes f in
  let fr =
    {
      slots = ref [ Hashtbl.create 8 ];
      next_offset = 0;
      frame_size;
      epilogue = fresh_label ("ret_" ^ f.fname);
      loop_labels = [];
    }
  in
  let em = { items = [] } in
  let global_names = List.map (fun (g : Ast.global) -> g.Ast.gname) prog.Ast.globals in
  let ctx = { prog; em; fr; strings; global_names } in
  emit_label em (function_label f.fname);
  (* prologue *)
  emit em (SPush (OReg fp));
  emit em (SMov (fp, OReg Instr.sp));
  if frame_size > 0 then emit em (SBin (Instr.Sub, Instr.sp, OImm (Int64.of_int frame_size)));
  (* spill parameters (passed in r0..r5) into their slots *)
  List.iteri
    (fun i (ty, name) ->
      let off = declare_slot fr name (Ast.sizeof ty) in
      emit em (SStore (access_width ty, fp, -off, OReg i)))
    f.params;
  List.iter (gen_stmt ctx) f.body;
  (* fall through: return 0 *)
  emit em (SMov (r0, OImm 0L));
  emit_label em fr.epilogue;
  emit em (SMov (Instr.sp, OReg fp));
  emit em (SPop fp);
  emit em SRet;
  List.rev em.items

let gen_function prog f =
  let strings = { pool = [] } in
  let items = gen_function_with prog strings f in
  let data =
    List.concat_map (fun (l, s) -> [ Asm.Label l; Asm.Str s ]) (List.rev strings.pool)
  in
  items @ data

let global_items (g : Ast.global) : Asm.item list =
  let size = Ast.sizeof g.Ast.gty in
  let data =
    match (g.Ast.init, g.Ast.gty) with
    | None, _ -> [ Asm.Zero size ]
    | Some (Ast.Scalar v), Ast.Tchar -> [ Asm.Byte [ Int64.to_int v land 0xFF ] ]
    | Some (Ast.Scalar v), _ -> [ Asm.Quad [ v ] ]
    | Some (Ast.Array_init vs), Ast.Tarray (Ast.Tchar, n) ->
        let bytes = List.map (fun v -> Int64.to_int v land 0xFF) vs in
        [ Asm.Byte bytes; Asm.Zero (max 0 (n - List.length bytes)) ]
    | Some (Ast.Array_init vs), Ast.Tarray (_, n) ->
        [ Asm.Quad vs; Asm.Zero (max 0 (8 * (n - List.length vs))) ]
    | Some (Ast.Array_init vs), _ -> [ Asm.Quad vs ]
    | Some (Ast.String_init s), Ast.Tarray (Ast.Tchar, n) ->
        [ Asm.Str s; Asm.Zero (max 0 (n - String.length s - 1)) ]
    | Some (Ast.String_init s), _ -> [ Asm.Str s ]
  in
  Asm.Label (global_label g.Ast.gname) :: data

let gen_image_items prog ~(root : Ast.func) ~snapshot (reach : Callgraph.reachable) :
    Asm.item list =
  let strings = { pool = [] } in
  let nparams = List.length root.Ast.params in
  let stub =
    [ Asm.Label "__unmarshal"; Asm.Insn (SMov (12, OImm 0L)) ]
    @ List.init nparams (fun i -> Asm.Insn (SLoad (Instr.W64, i, 12, 8 * i)))
    @ [
        Asm.Insn (SCall (Lbl (function_label root.Ast.fname)));
        (* exit(result) *)
        Asm.Insn (SMov (r1, OReg r0));
        Asm.Insn (SMov (r0, OImm (Int64.of_int Wasp.Hc.exit_)));
        Asm.Insn (SOut (Wasp.Hc.port, OReg r0));
        Asm.Insn SHlt;
      ]
  in
  let funcs =
    List.concat_map
      (fun name ->
        match Ast.find_func prog name with
        | Some f -> gen_function_with prog strings f
        | None -> [])
      reach.Callgraph.funcs
  in
  let globals =
    List.concat_map
      (fun name ->
        match List.find_opt (fun (g : Ast.global) -> g.Ast.gname = name) prog.Ast.globals
        with
        | Some g -> global_items g
        | None -> [])
      reach.Callgraph.globals
  in
  let string_data =
    List.concat_map (fun (l, s) -> [ Asm.Label l; Asm.Str s ]) (List.rev strings.pool)
  in
  Vlibc.init_items ~snapshot @ stub @ funcs
  @ Vlibc.items_for reach.Callgraph.builtins
  @ globals @ string_data
  @ [ Asm.Label "__heap_start" ]
