exception Sema_error of { loc : Ast.loc; msg : string }

let fail loc fmt = Printf.ksprintf (fun msg -> raise (Sema_error { loc; msg })) fmt

type scope = { vars : (string, Ast.ty) Hashtbl.t; parent : scope option }

let new_scope parent = { vars = Hashtbl.create 8; parent }

let rec lookup_var scope name =
  match Hashtbl.find_opt scope.vars name with
  | Some t -> Some t
  | None -> ( match scope.parent with Some p -> lookup_var p name | None -> None)

let declare scope loc name ty =
  if Hashtbl.mem scope.vars name then fail loc "duplicate declaration of %s" name;
  Hashtbl.replace scope.vars name ty

let is_lvalue (e : Ast.expr) =
  match e.desc with
  | Ast.Var _ -> (match e.ty with Ast.Tarray _ -> false | _ -> true)
  | Ast.Unary (Ast.Deref, _) | Ast.Index (_, _) -> true
  | _ -> false

(* permissive scalar compatibility, as in pre-ANSI C: int/char/pointers
   interconvert freely; only void is special. *)
let scalar = function Ast.Tvoid -> false | _ -> true

let decay = function Ast.Tarray (t, _) -> Ast.Tptr t | t -> t

type env = {
  prog : Ast.program;
  globals : (string, Ast.ty) Hashtbl.t;
  funcs : (string, Ast.func) Hashtbl.t;
}

let rec check_expr env scope (e : Ast.expr) : unit =
  let loc = e.loc in
  (match e.desc with
  | Ast.Int_lit _ -> e.ty <- Ast.Tint
  | Ast.Char_lit _ -> e.ty <- Ast.Tchar
  | Ast.Str_lit _ -> e.ty <- Ast.Tptr Ast.Tchar
  | Ast.Var name -> (
      match lookup_var scope name with
      | Some t -> e.ty <- t
      | None -> (
          match Hashtbl.find_opt env.globals name with
          | Some t -> e.ty <- t
          | None -> fail loc "unknown variable %s" name))
  | Ast.Unary (op, a) -> (
      check_expr env scope a;
      match op with
      | Ast.Neg | Ast.Bitnot ->
          if not (scalar a.ty) then fail loc "arithmetic on void";
          e.ty <- Ast.Tint
      | Ast.Lognot -> e.ty <- Ast.Tint
      | Ast.Deref -> (
          match decay a.ty with
          | Ast.Tptr t -> e.ty <- t
          | other -> fail loc "cannot dereference %s" (Format.asprintf "%a" Ast.pp_ty other))
      | Ast.Addrof ->
          if not (is_lvalue a) && not (match a.ty with Ast.Tarray _ -> true | _ -> false)
          then fail loc "cannot take the address of this expression";
          e.ty <- (match a.ty with Ast.Tarray (t, _) -> Ast.Tptr t | t -> Ast.Tptr t))
  | Ast.Binary (op, a, b) -> (
      check_expr env scope a;
      check_expr env scope b;
      if not (scalar a.ty && scalar b.ty) then fail loc "arithmetic on void";
      match op with
      | Ast.Add | Ast.Sub -> (
          match (decay a.ty, decay b.ty) with
          | Ast.Tptr t, (Ast.Tint | Ast.Tchar) -> e.ty <- Ast.Tptr t
          | (Ast.Tint | Ast.Tchar), Ast.Tptr t ->
              if op = Ast.Sub then fail loc "cannot subtract a pointer from an integer";
              e.ty <- Ast.Tptr t
          | Ast.Tptr ta, Ast.Tptr _ ->
              if op = Ast.Add then fail loc "cannot add two pointers";
              ignore ta;
              e.ty <- Ast.Tint
          | _ -> e.ty <- Ast.Tint)
      | Ast.Mul | Ast.Div | Ast.Rem | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl | Ast.Shr ->
          e.ty <- Ast.Tint
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne | Ast.Land | Ast.Lor ->
          e.ty <- Ast.Tint)
  | Ast.Assign (lhs, rhs) ->
      check_expr env scope lhs;
      check_expr env scope rhs;
      if not (is_lvalue lhs) then fail loc "assignment target is not an lvalue";
      if not (scalar rhs.ty) then fail loc "cannot assign a void value";
      e.ty <- lhs.ty
  | Ast.Call (name, args) -> (
      List.iter (check_expr env scope) args;
      match Hashtbl.find_opt env.funcs name with
      | Some f ->
          if List.length args <> List.length f.params then
            fail loc "%s expects %d arguments, got %d" name (List.length f.params)
              (List.length args);
          e.ty <- f.ret
      | None -> (
          match Vlibc.lookup name with
          | Some s ->
              if List.length args <> List.length s.params then
                fail loc "%s expects %d arguments, got %d" name (List.length s.params)
                  (List.length args);
              e.ty <- s.ret
          | None -> fail loc "call to undefined function %s" name))
  | Ast.Index (a, i) -> (
      check_expr env scope a;
      check_expr env scope i;
      match decay a.ty with
      | Ast.Tptr t -> e.ty <- t
      | other -> fail loc "cannot index %s" (Format.asprintf "%a" Ast.pp_ty other))
  | Ast.Cond (c, a, b) ->
      check_expr env scope c;
      check_expr env scope a;
      check_expr env scope b;
      e.ty <- a.ty);
  ()

let rec check_stmt env scope ~in_loop ~fname (s : Ast.stmt) : unit =
  match s with
  | Ast.Expr e -> check_expr env scope e
  | Ast.Decl (ty, name, init, loc) ->
      (match ty with
      | Ast.Tvoid -> fail loc "cannot declare a void variable"
      | Ast.Tarray (_, n) when n <= 0 -> fail loc "array size must be positive"
      | _ -> ());
      (match init with
      | Some e ->
          check_expr env scope e;
          if not (scalar e.ty) then fail loc "cannot initialize from void"
      | None -> ());
      declare scope loc name ty
  | Ast.If (c, t, f) ->
      check_expr env scope c;
      let ts = new_scope (Some scope) and fs = new_scope (Some scope) in
      List.iter (check_stmt env ts ~in_loop ~fname) t;
      List.iter (check_stmt env fs ~in_loop ~fname) f
  | Ast.While (c, body) ->
      check_expr env scope c;
      let bs = new_scope (Some scope) in
      List.iter (check_stmt env bs ~in_loop:true ~fname) body
  | Ast.Dowhile (body, c) ->
      let bs = new_scope (Some scope) in
      List.iter (check_stmt env bs ~in_loop:true ~fname) body;
      check_expr env bs c
  | Ast.For (init, cond, step, body) ->
      let fs = new_scope (Some scope) in
      (match init with Some s -> check_stmt env fs ~in_loop ~fname s | None -> ());
      (match cond with Some e -> check_expr env fs e | None -> ());
      (match step with Some e -> check_expr env fs e | None -> ());
      let bs = new_scope (Some fs) in
      List.iter (check_stmt env bs ~in_loop:true ~fname) body
  | Ast.Return (e, _loc) -> (
      match e with Some e -> check_expr env scope e | None -> ())
  | Ast.Break loc -> if not in_loop then fail loc "break outside a loop"
  | Ast.Continue loc -> if not in_loop then fail loc "continue outside a loop"
  | Ast.Block body ->
      let bs = new_scope (Some scope) in
      List.iter (check_stmt env bs ~in_loop ~fname) body

let check_func env (f : Ast.func) =
  if Vlibc.is_builtin f.fname then
    fail f.floc "%s shadows a libc builtin" f.fname;
  (* virtine functions cross the marshalling boundary: parameters must be
     scalar 64-bit words (§7.2's ABI challenge) *)
  (match f.annot with
  | Ast.Not_virtine -> ()
  | Ast.Virtine | Ast.Virtine_permissive | Ast.Virtine_config _ ->
      if List.length f.params > 6 then
        fail f.floc "virtine functions take at most 6 marshalled arguments";
      List.iter
        (fun (ty, name) ->
          match ty with
          | Ast.Tint | Ast.Tchar -> ()
          | Ast.Tptr _ | Ast.Tarray _ | Ast.Tvoid ->
              fail f.floc
                "virtine parameter %s must be a scalar (pointers do not cross the \
                 marshalling boundary)"
                name)
        f.params);
  let scope = new_scope None in
  List.iter (fun (ty, name) -> declare scope f.floc name ty) f.params;
  List.iter (check_stmt env scope ~in_loop:false ~fname:f.fname) f.body

let check (prog : Ast.program) =
  let globals = Hashtbl.create 16 and funcs = Hashtbl.create 16 in
  List.iter
    (fun (g : Ast.global) ->
      if Hashtbl.mem globals g.gname then fail g.gloc "duplicate global %s" g.gname;
      (match (g.gty, g.init) with
      | Ast.Tvoid, _ -> fail g.gloc "cannot declare a void global"
      | Ast.Tarray (_, n), Some (Ast.Array_init vs) when List.length vs > n ->
          fail g.gloc "initializer longer than array"
      | Ast.Tarray (Ast.Tchar, n), Some (Ast.String_init s) when String.length s + 1 > n
        ->
          fail g.gloc "string initializer longer than array"
      | _ -> ());
      Hashtbl.replace globals g.gname g.gty)
    prog.globals;
  List.iter
    (fun (f : Ast.func) ->
      if Hashtbl.mem funcs f.fname then fail f.floc "duplicate function %s" f.fname;
      Hashtbl.replace funcs f.fname f)
    prog.funcs;
  let env = { prog; globals; funcs } in
  List.iter (check_func env) prog.funcs;
  prog
