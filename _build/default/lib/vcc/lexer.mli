(** Hand-written lexer for the virtine C dialect. *)

type token =
  | INT_LIT of int64
  | CHAR_LIT of char
  | STR_LIT of string
  | IDENT of string
  | KW_INT | KW_CHAR | KW_VOID | KW_LONG
  | KW_IF | KW_ELSE | KW_WHILE | KW_DO | KW_FOR | KW_RETURN | KW_BREAK | KW_CONTINUE
  | KW_SIZEOF
  | KW_VIRTINE | KW_VIRTINE_PERMISSIVE | KW_VIRTINE_CONFIG
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | QUESTION | COLON
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | SHL | SHR
  | LT | LE | GT | GE | EQEQ | NEQ
  | ANDAND | OROR
  | ASSIGN
  | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ   (** compound assignment *)
  | PLUSPLUS | MINUSMINUS                  (** ++ / -- *)
  | EOF

val token_name : token -> string

exception Lex_error of { loc : Ast.loc; msg : string }

val tokenize : string -> (token * Ast.loc) list
(** Full token stream including a trailing [EOF]. Handles [//] and
    [/* ... */] comments, decimal/hex literals, char and string escapes.
    @raise Lex_error on malformed input. *)
