type loc = { line : int; col : int }

let pp_loc ppf l = Format.fprintf ppf "%d:%d" l.line l.col

type ty = Tvoid | Tint | Tchar | Tptr of ty | Tarray of ty * int

let rec sizeof = function
  | Tvoid -> 0
  | Tint -> 8
  | Tchar -> 1
  | Tptr _ -> 8
  | Tarray (t, n) -> sizeof t * n

let rec ty_equal a b =
  match (a, b) with
  | Tvoid, Tvoid | Tint, Tint | Tchar, Tchar -> true
  | Tptr a, Tptr b -> ty_equal a b
  | Tarray (a, n), Tarray (b, m) -> n = m && ty_equal a b
  | (Tvoid | Tint | Tchar | Tptr _ | Tarray _), _ -> false

let rec pp_ty ppf = function
  | Tvoid -> Format.pp_print_string ppf "void"
  | Tint -> Format.pp_print_string ppf "int"
  | Tchar -> Format.pp_print_string ppf "char"
  | Tptr t -> Format.fprintf ppf "%a*" pp_ty t
  | Tarray (t, n) -> Format.fprintf ppf "%a[%d]" pp_ty t n

type unop = Neg | Lognot | Bitnot | Deref | Addrof

type binop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | Land | Lor

type expr = { desc : expr_desc; loc : loc; mutable ty : ty }

and expr_desc =
  | Int_lit of int64
  | Char_lit of char
  | Str_lit of string
  | Var of string
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Assign of expr * expr
  | Call of string * expr list
  | Index of expr * expr
  | Cond of expr * expr * expr

type stmt =
  | Expr of expr
  | Decl of ty * string * expr option * loc
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Dowhile of stmt list * expr
  | For of stmt option * expr option * expr option * stmt list
  | Return of expr option * loc
  | Break of loc
  | Continue of loc
  | Block of stmt list

type annotation = Not_virtine | Virtine | Virtine_permissive | Virtine_config of int64

type func = {
  fname : string;
  annot : annotation;
  ret : ty;
  params : (ty * string) list;
  body : stmt list;
  floc : loc;
}

type global = { gname : string; gty : ty; init : init option; gloc : loc }

and init = Scalar of int64 | Array_init of int64 list | String_init of string

type program = { globals : global list; funcs : func list }

let find_func p name = List.find_opt (fun f -> f.fname = name) p.funcs
