lib/kvmsim/kvm.mli: Cycles Instr Vm
