lib/kvmsim/kvm.ml: Cycles Instr Vm
