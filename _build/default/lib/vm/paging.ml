let pml4_addr = 0x1000
let pdpt_addr = 0x2000
let pd_addr = 0x3000

let flag_present = 1L
let flag_writable = 2L
let flag_large_page = 0x80L

let entry ~phys ~flags = Int64.logor (Int64.of_int phys) flags

let mapped_bytes = 512 * (2 lsl 20)

let build_identity_map mem =
  let stores = ref 0 in
  let put addr v =
    Memory.write_u64 mem addr v;
    incr stores
  in
  let table_flags = Int64.logor flag_present flag_writable in
  put pml4_addr (entry ~phys:pdpt_addr ~flags:table_flags);
  put pdpt_addr (entry ~phys:pd_addr ~flags:table_flags);
  let page_flags = Int64.logor table_flags flag_large_page in
  for i = 0 to 511 do
    put (pd_addr + (8 * i)) (entry ~phys:(i * (2 lsl 20)) ~flags:page_flags)
  done;
  !stores

let translate mem vaddr =
  if vaddr < 0 then None
  else begin
    let idx_pml4 = (vaddr lsr 39) land 0x1FF in
    let idx_pdpt = (vaddr lsr 30) land 0x1FF in
    let idx_pd = (vaddr lsr 21) land 0x1FF in
    let offset = vaddr land ((2 lsl 20) - 1) in
    let present e = Int64.logand e flag_present <> 0L in
    let phys_of e = Int64.to_int (Int64.logand e 0x000F_FFFF_FFFF_F000L) in
    let pml4e = Memory.read_u64 mem (pml4_addr + (8 * idx_pml4)) in
    if not (present pml4e) then None
    else begin
      let pdpte = Memory.read_u64 mem (phys_of pml4e + (8 * idx_pdpt)) in
      if not (present pdpte) then None
      else begin
        let pde = Memory.read_u64 mem (phys_of pdpte + (8 * idx_pd)) in
        if not (present pde) then None
        else if Int64.logand pde flag_large_page = 0L then None
        else begin
          (* 2 MB page: bits 20:0 are the offset; mask accordingly. *)
          let base = Int64.to_int (Int64.logand pde 0x000F_FFFF_FFE0_0000L) in
          Some (base + offset)
        end
      end
    end
  end
