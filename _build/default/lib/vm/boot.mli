(** Minimal boot sequencer.

    Mirrors the ~160-line assembly bring-up the paper measures in Table 1:
    from reset, configure a GDT, flip into protected mode, optionally set
    up identity paging and enter long mode, then fetch the first guest
    instruction. Each component charges cycles against the virtual clock
    and is reported by name so the Table 1 bench can print the breakdown. *)

type component = { name : string; cycles : int }

val component_names : string list
(** Stable names, in Table 1's order: ["paging ident. map";
    "protected transition"; "long transition"; "jump to 32-bit";
    "jump to 64-bit"; "load 32-bit gdt"; "first instruction"]. *)

val perform :
  mem:Memory.t -> clock:Cycles.Clock.t -> rng:Cycles.Rng.t -> target:Modes.t -> component list
(** Bring the machine from reset to [target] mode. Writes the GDT and (for
    long mode) the page tables into guest memory, charges each component's
    cycles (with measurement jitter), and returns the per-component
    breakdown actually charged. Real mode performs only the first
    instruction fetch — the basis of Figure 3's real-mode savings. *)

val total_cost : component list -> int
