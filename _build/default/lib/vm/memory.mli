(** Guest physical memory.

    Each virtine owns a private, bounds-checked memory region; this is the
    mechanism behind the paper's isolation objective that a virtine "may
    not interact with any data or services outside of its own address
    space" (§3.1). Out-of-bounds accesses raise {!Fault}, which the CPU
    reports as a VM exit instead of ever touching host state. *)

exception Fault of { addr : int; size : int }
(** Raised on any access outside [0, size). *)

type t

val create : size:int -> t
(** Fresh zeroed memory of [size] bytes. *)

val size : t -> int

val read_u8 : t -> int -> int
val read_u16 : t -> int -> int
val read_u32 : t -> int -> int
(** Little-endian; result in [0, 2^32). *)

val read_u64 : t -> int -> int64

val write_u8 : t -> int -> int -> unit
val write_u16 : t -> int -> int -> unit
val write_u32 : t -> int -> int -> unit
val write_u64 : t -> int -> int64 -> unit

val read_bytes : t -> off:int -> len:int -> bytes
val write_bytes : t -> off:int -> bytes -> unit

val read_cstring : t -> off:int -> max:int -> string
(** Read a NUL-terminated string of at most [max] bytes; raises {!Fault}
    if no terminator is found within bounds (hypercall handlers use this to
    validate guest-supplied paths without trusting guest lengths). *)

val fill_zero : t -> unit
(** Zero the whole region (pool cleaning). *)

val copy_to : src:t -> dst:t -> unit
(** Whole-region copy; sizes must match (snapshot capture/restore). *)

val snapshot : t -> bytes
(** Copy out the full contents. *)

val restore : t -> bytes -> unit
(** Overwrite contents from a snapshot of equal size. *)

(** {1 Dirty-page tracking}

    Every write marks its 4 KB page dirty. Copy-on-write virtine resets
    (the SEUSS-style optimization of §7.2) restore only the pages the
    previous invocation touched instead of the whole footprint. *)

val page_size : int
(** 4096. *)

val dirty_pages : t -> int list
(** Indices of pages written since the last {!clear_dirty}, ascending. *)

val dirty_count : t -> int

val clear_dirty : t -> unit
