(** Long-mode identity paging.

    Table 1's dominant boot component (~28K cycles) is building the
    three-level identity mapping of the first 1 GB using 2 MB large pages:
    one PML4 entry, one PDPT entry and 512 PD entries — "12KB of memory
    references" — plus CR3 installation and KVM's EPT construction. We
    build the actual tables in guest memory with real x86 PTE bit layouts
    so the cost falls out of counted uncached stores. *)

val pml4_addr : int
(** Physical address of the PML4 (0x1000); PDPT and PD follow at 0x2000
    and 0x3000. *)

val flag_present : int64
val flag_writable : int64
val flag_large_page : int64   (** PS bit (bit 7) in a PD entry. *)

val entry : phys:int -> flags:int64 -> int64

val mapped_bytes : int
(** 1 GB: 512 entries x 2 MB. *)

val build_identity_map : Memory.t -> int
(** Write the three table levels into guest memory; returns the number of
    64-bit stores performed (the caller charges cycles per store). *)

val translate : Memory.t -> int -> int option
(** Walk the tables the way hardware would: returns the physical address
    for a virtual address, or [None] if unmapped. Used by tests to verify
    the identity map and by the CPU when paging is enabled. *)
