lib/vm/memory.ml: Bytes Char
