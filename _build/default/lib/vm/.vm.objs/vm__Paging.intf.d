lib/vm/paging.mli: Memory
