lib/vm/gdt.ml: Int64 Memory
