lib/vm/boot.mli: Cycles Memory Modes
