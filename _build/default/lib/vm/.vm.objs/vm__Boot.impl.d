lib/vm/boot.ml: Cycles Gdt List Modes Paging
