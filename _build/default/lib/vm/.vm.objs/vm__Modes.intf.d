lib/vm/modes.mli: Format
