lib/vm/memory.mli:
