lib/vm/paging.ml: Int64 Memory
