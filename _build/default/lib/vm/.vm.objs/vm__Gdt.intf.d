lib/vm/gdt.mli: Memory
