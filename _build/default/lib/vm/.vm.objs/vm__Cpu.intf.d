lib/vm/cpu.mli: Cycles Format Instr Memory Modes
