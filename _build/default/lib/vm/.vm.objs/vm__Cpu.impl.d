lib/vm/cpu.ml: Array Cycles Encoding Format Instr Int64 Memory Modes
