lib/vm/modes.ml: Format Int64
