type component = { name : string; cycles : int }

let component_names =
  [
    "paging ident. map";
    "protected transition";
    "long transition";
    "jump to 32-bit";
    "jump to 64-bit";
    "load 32-bit gdt";
    "first instruction";
  ]

let perform ~mem ~clock ~rng ~target =
  let charged = ref [] in
  let charge name cycles =
    let cycles = Cycles.Costs.jitter_pos rng ~pct:0.04 cycles in
    Cycles.Clock.advance_int clock cycles;
    charged := { name; cycles } :: !charged
  in
  (match target with
  | Modes.Real -> ()
  | Modes.Protected | Modes.Long ->
      let long = Modes.equal target Modes.Long in
      let _bytes = Gdt.write mem ~long in
      charge "load 32-bit gdt" Cycles.Costs.lgdt32;
      charge "protected transition" Cycles.Costs.protected_transition;
      charge "jump to 32-bit" Cycles.Costs.ljmp32;
      if long then begin
        (* Build the three-level identity map with real stores; the charge
           is per uncached store plus KVM's EPT construction, which is how
           Table 1's ~28K-cycle paging component arises. *)
        let stores = Paging.build_identity_map mem in
        charge "paging ident. map" ((stores * Cycles.Costs.mem_cold) + Cycles.Costs.ept_build);
        charge "long transition" Cycles.Costs.long_transition;
        charge "jump to 64-bit" Cycles.Costs.ljmp64
      end);
  charge "first instruction" Cycles.Costs.first_instruction;
  List.rev !charged

let total_cost components = List.fold_left (fun acc c -> acc + c.cycles) 0 components
