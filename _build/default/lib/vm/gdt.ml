let base_addr = 0x500

type descriptor = {
  base : int;
  limit : int;
  executable : bool;
  long_mode : bool;
  default_32bit : bool;
  granularity_4k : bool;
}

(* x86 segment descriptor layout (8 bytes):
   bits 0-15  limit[15:0]
   bits 16-39 base[23:0]
   bits 40-47 access byte (present, ring 0, code/data, executable, RW)
   bits 48-51 limit[19:16]
   bits 52-55 flags (G, D, L, AVL)
   bits 56-63 base[31:24] *)
let encode_descriptor d =
  let open Int64 in
  let limit_lo = d.limit land 0xFFFF in
  let limit_hi = (d.limit lsr 16) land 0xF in
  let base_lo = d.base land 0xFFFFFF in
  let base_hi = (d.base lsr 24) land 0xFF in
  let access =
    0x92 (* present, ring0, S=1, RW *)
    lor (if d.executable then 0x08 else 0)
  in
  let flags =
    (if d.granularity_4k then 0x8 else 0)
    lor (if d.default_32bit then 0x4 else 0)
    lor (if d.long_mode then 0x2 else 0)
  in
  logor (of_int limit_lo)
    (logor
       (shift_left (of_int base_lo) 16)
       (logor
          (shift_left (of_int access) 40)
          (logor
             (shift_left (of_int limit_hi) 48)
             (logor (shift_left (of_int flags) 52) (shift_left (of_int base_hi) 56)))))

let decode_descriptor q =
  let open Int64 in
  let field shift mask = to_int (logand (shift_right_logical q shift) (of_int mask)) in
  let limit = field 0 0xFFFF lor (field 48 0xF lsl 16) in
  let base = field 16 0xFFFFFF lor (field 56 0xFF lsl 24) in
  let access = field 40 0xFF in
  let flags = field 52 0xF in
  {
    base;
    limit;
    executable = access land 0x08 <> 0;
    long_mode = flags land 0x2 <> 0;
    default_32bit = flags land 0x4 <> 0;
    granularity_4k = flags land 0x8 <> 0;
  }

let flat_code ~long =
  {
    base = 0;
    limit = 0xFFFFF;
    executable = true;
    long_mode = long;
    default_32bit = not long;
    granularity_4k = true;
  }

let flat_data =
  {
    base = 0;
    limit = 0xFFFFF;
    executable = false;
    long_mode = false;
    default_32bit = true;
    granularity_4k = true;
  }

let write mem ~long =
  Memory.write_u64 mem base_addr 0L;
  Memory.write_u64 mem (base_addr + 8) (encode_descriptor (flat_code ~long));
  Memory.write_u64 mem (base_addr + 16) (encode_descriptor flat_data);
  24
