(** Global Descriptor Table construction.

    Protected- and long-mode bring-up requires a GDT; we build a real
    x86-format table (null, flat code, flat data descriptors) in guest
    memory so the boot cost is dominated by genuine memory stores, and so
    tests can check the descriptor encoding against the architectural
    layout. *)

val base_addr : int
(** Where the boot sequence places the GDT (0x500, below the image). *)

type descriptor = {
  base : int;
  limit : int;
  executable : bool;
  long_mode : bool;          (** L bit: 64-bit code segment. *)
  default_32bit : bool;      (** D bit. *)
  granularity_4k : bool;
}

val encode_descriptor : descriptor -> int64
(** Pack into the split-field x86 segment descriptor format. *)

val decode_descriptor : int64 -> descriptor
(** Inverse of {!encode_descriptor} (limit/base reassembled from the split
    fields). *)

val flat_code : long:bool -> descriptor
val flat_data : descriptor

val write : Memory.t -> long:bool -> int
(** Build a 3-entry GDT (null, code, data) at {!base_addr}; returns the
    number of bytes written. *)
