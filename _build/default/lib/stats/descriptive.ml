let check_nonempty name xs = if Array.length xs = 0 then invalid_arg name

let mean xs =
  check_nonempty "Descriptive.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let stddev xs =
  check_nonempty "Descriptive.stddev" xs;
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let minimum xs =
  check_nonempty "Descriptive.minimum" xs;
  Array.fold_left min xs.(0) xs

let maximum xs =
  check_nonempty "Descriptive.maximum" xs;
  Array.fold_left max xs.(0) xs

let percentile xs p =
  check_nonempty "Descriptive.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Descriptive.percentile: p outside [0,100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median xs = percentile xs 50.0

let iqr xs = percentile xs 75.0 -. percentile xs 25.0

let tukey_filter xs =
  check_nonempty "Descriptive.tukey_filter" xs;
  let q25 = percentile xs 25.0 and q75 = percentile xs 75.0 in
  let spread = 1.5 *. (q75 -. q25) in
  let lo = q25 -. spread and hi = q75 +. spread in
  let kept = Array.of_list (List.filter (fun x -> x >= lo && x <= hi) (Array.to_list xs)) in
  if Array.length kept = 0 then xs else kept

let harmonic_mean xs =
  check_nonempty "Descriptive.harmonic_mean" xs;
  let sum_inv =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Descriptive.harmonic_mean: nonpositive value";
        acc +. (1.0 /. x))
      0.0 xs
  in
  float_of_int (Array.length xs) /. sum_inv

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p99 : float;
}

let summarize ?(tukey = true) xs =
  check_nonempty "Descriptive.summarize" xs;
  let xs = if tukey then tukey_filter xs else xs in
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = minimum xs;
    max = maximum xs;
    p50 = median xs;
    p99 = percentile xs 99.0;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.1f sd=%.1f min=%.1f p50=%.1f p99=%.1f max=%.1f" s.n s.mean
    s.stddev s.min s.p50 s.p99 s.max
