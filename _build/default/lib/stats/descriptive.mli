(** Descriptive statistics used by the evaluation harness.

    The paper reports means with standard deviations, removes host-scheduler
    outliers with Tukey's method (values outside
    [q25 - 1.5 IQR, q75 + 1.5 IQR]), and uses the harmonic mean for
    throughput aggregation; all of those live here. *)

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on empty input. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); 0 for singletons. *)

val minimum : float array -> float
val maximum : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100], linear interpolation between
    order statistics. Does not require sorted input. *)

val median : float array -> float

val iqr : float array -> float
(** Interquartile range (q75 - q25). *)

val tukey_filter : float array -> float array
(** Remove outliers outside [q25 - 1.5 IQR, q75 + 1.5 IQR], as in the
    paper's Section 4.2 footnote. *)

val harmonic_mean : float array -> float
(** Harmonic mean; used for throughput (Figure 13). All values must be
    positive. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p99 : float;
}

val summarize : ?tukey:bool -> float array -> summary
(** Summary statistics, optionally after Tukey filtering (default true). *)

val pp_summary : Format.formatter -> summary -> unit
