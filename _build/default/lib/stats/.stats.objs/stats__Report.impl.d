lib/stats/report.ml: Buffer List Printf String
