lib/stats/report.mli:
