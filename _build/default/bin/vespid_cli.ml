(* vespid: single-node serverless platform demo (§7.1). Registers JS
   functions from files or built-ins and serves invocations.

     vespid_cli demo
     vespid_cli invoke -s FILE.js -e encode -d "payload"
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let demo_cmd =
  let run () =
    let w = Wasp.Runtime.create ~clean:`Async () in
    let platform = Serverless.Vespid.create w in
    Serverless.Vespid.register platform ~name:"base64" ~source:Vjs.Workload.base64_js_source
      ~entry:"encode";
    Serverless.Vespid.register platform ~name:"wordcount"
      ~source:
        {|function count(data) {
            var words = 0;
            var in_word = false;
            for (var i = 0; i < data.length; i++) {
              var space = data[i] === 32 || data[i] === 10 || data[i] === 9;
              if (!space && !in_word) { words++; }
              in_word = !space;
            }
            return "" + words;
          }|}
      ~entry:"count";
    let clock = Wasp.Runtime.clock w in
    print_endline "vespid: single-node serverless platform (virtine per invocation)";
    List.iter
      (fun (name, payload) ->
        let result, cycles =
          Serverless.Vespid.invoke_timed platform ~name ~input:(Bytes.of_string payload)
        in
        match result with
        | Ok out ->
            Printf.printf "  %s(%S) = %S  [%.0f us]\n" name payload out
              (Cycles.Clock.to_us clock cycles)
        | Error e -> Printf.printf "  %s failed: %s\n" name e)
      [
        ("base64", "serverless virtines");
        ("wordcount", "how many words are in here");
        ("base64", "warm path now");
        ("wordcount", "two words");
      ];
    0
  in
  Cmd.v (Cmd.info "demo" ~doc:"Run the built-in demo functions") Term.(const run $ const ())

let invoke_cmd =
  let source = Arg.(required & opt (some file) None & info [ "s"; "source" ] ~docv:"FILE.js") in
  let entry = Arg.(value & opt string "main" & info [ "e"; "entry" ] ~docv:"NAME") in
  let data = Arg.(value & opt string "" & info [ "d"; "data" ] ~docv:"PAYLOAD") in
  let trials = Arg.(value & opt int 1 & info [ "n" ] ~doc:"Invocation count") in
  let run source entry data trials =
    let w = Wasp.Runtime.create ~clean:`Async () in
    let platform = Serverless.Vespid.create w in
    Serverless.Vespid.register platform ~name:"f" ~source:(read_file source) ~entry;
    let clock = Wasp.Runtime.clock w in
    let code = ref 0 in
    for i = 1 to trials do
      let result, cycles =
        Serverless.Vespid.invoke_timed platform ~name:"f" ~input:(Bytes.of_string data)
      in
      match result with
      | Ok out -> Printf.printf "[%d] %S  [%.0f us]\n" i out (Cycles.Clock.to_us clock cycles)
      | Error e ->
          Printf.printf "[%d] error: %s\n" i e;
          code := 1
    done;
    !code
  in
  Cmd.v
    (Cmd.info "invoke" ~doc:"Register a JS file and invoke it")
    Term.(const run $ source $ entry $ data $ trials)

let () =
  let doc = "Vespid: serverless functions in virtines" in
  exit (Cmd.eval' (Cmd.group (Cmd.info "vespid" ~doc) [ demo_cmd; invoke_cmd ]))
