(* vcc: the virtine C compiler driver (the paper's clang-wrapper
   analogue). Compiles a .c file in the virtine dialect and runs a
   function natively or as a virtine.

     vcc_cli run FILE.c -f fib -a 20
     vcc_cli run FILE.c -f fib -a 20 --native
     vcc_cli images FILE.c
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Virtine C source file")

let func_arg =
  Arg.(value & opt string "main" & info [ "f"; "function" ] ~docv:"NAME" ~doc:"Function to run")

let args_arg =
  Arg.(
    value & opt_all int64 [] & info [ "a"; "arg" ] ~docv:"N" ~doc:"Integer argument (repeatable)")

let native_arg =
  Arg.(value & flag & info [ "native" ] ~doc:"Run on a bare CPU instead of in a virtine")

let mode_arg =
  let modes = [ ("real", Vm.Modes.Real); ("protected", Vm.Modes.Protected); ("long", Vm.Modes.Long) ] in
  Arg.(value & opt (enum modes) Vm.Modes.Long & info [ "m"; "mode" ] ~doc:"Processor mode")

let no_snapshot_arg =
  Arg.(value & flag & info [ "no-snapshot" ] ~doc:"Disable the snapshot optimization")

let compile_file ~mode ~snapshot path =
  Vcc.Compile.compile ~mode ~snapshot ~name:(Filename.remove_extension (Filename.basename path))
    (read_file path)

let run_cmd =
  let run file fname args native mode no_snapshot =
    match compile_file ~mode ~snapshot:(not no_snapshot) file with
    | exception Vcc.Compile.Compile_error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | compiled ->
        if native then begin
          let clock = Cycles.Clock.create () in
          let v = Vcc.Compile.invoke_native ~clock compiled fname args () in
          Printf.printf "%s(%s) = %Ld  [native, %.1f us]\n" fname
            (String.concat ", " (List.map Int64.to_string args))
            v
            (Cycles.Clock.to_us clock (Cycles.Clock.now clock));
          0
        end
        else begin
          match Vcc.Compile.find_virtine compiled fname with
          | None ->
              Printf.eprintf "error: %s is not virtine-annotated (try --native)\n" fname;
              1
          | Some _ ->
              let w = Wasp.Runtime.create () in
              let r = Vcc.Compile.invoke w compiled fname args () in
              (match r.Wasp.Runtime.outcome with
              | Wasp.Runtime.Exited _ ->
                  Printf.printf "%s(%s) = %Ld  [virtine, %.1f us, %d hypercalls, %d denied]\n"
                    fname
                    (String.concat ", " (List.map Int64.to_string args))
                    r.Wasp.Runtime.return_value
                    (Cycles.Clock.to_us (Wasp.Runtime.clock w) r.Wasp.Runtime.cycles)
                    r.Wasp.Runtime.hypercalls r.Wasp.Runtime.denied;
                  0
              | Wasp.Runtime.Faulted f ->
                  Printf.printf "virtine faulted: %s\n"
                    (Format.asprintf "%a" Vm.Cpu.pp_exit (Vm.Cpu.Fault f));
                  1
              | Wasp.Runtime.Fuel_exhausted ->
                  print_endline "virtine ran out of fuel";
                  1)
        end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and run a function")
    Term.(const run $ file_arg $ func_arg $ args_arg $ native_arg $ mode_arg $ no_snapshot_arg)

let images_cmd =
  let images file mode =
    match compile_file ~mode ~snapshot:true file with
    | exception Vcc.Compile.Compile_error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | compiled ->
        let vis = Vcc.Compile.virtines compiled in
        if vis = [] then print_endline "no virtine-annotated functions"
        else
          List.iter
            (fun (vi : Vcc.Compile.virtine_info) ->
              Printf.printf "%s:\n  image %d bytes, guest region %d KB, %s mode\n  policy: %s\n"
                vi.func.Vcc.Ast.fname
                (Wasp.Image.size vi.image)
                (vi.image.Wasp.Image.mem_size / 1024)
                (Vm.Modes.to_string vi.image.Wasp.Image.mode)
                (Format.asprintf "%a" Wasp.Policy.pp vi.policy))
            vis;
        0
  in
  Cmd.v
    (Cmd.info "images" ~doc:"Show the virtine images a file compiles to")
    Term.(const images $ file_arg $ mode_arg)

let disasm_cmd =
  let disasm file fname mode =
    match compile_file ~mode ~snapshot:true file with
    | exception Vcc.Compile.Compile_error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | compiled -> (
        match Vcc.Compile.find_virtine compiled fname with
        | None ->
            Printf.eprintf "error: no virtine function %s\n" fname;
            1
        | Some vi ->
            print_string (Disasm.of_program vi.Vcc.Compile.asm);
            0)
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble a virtine function's image")
    Term.(const disasm $ file_arg $ func_arg $ mode_arg)

let () =
  let doc = "virtine C compiler (vcc)" in
  exit (Cmd.eval' (Cmd.group (Cmd.info "vcc" ~doc) [ run_cmd; images_cmd; disasm_cmd ]))
