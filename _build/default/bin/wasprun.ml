(* wasprun: load an assembled vx image and run it under Wasp, like
   feeding a raw binary to the paper's runtime API.

     wasprun FILE.vxa [--mode real|protected|long] [--allow read,write,...]
     wasprun --example         # run a built-in demo image
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let example_source =
  {|
; demo: compute 6*7 and report it via the exit hypercall
start:
  mov r1, 6
  mov r2, 7
  mov r0, r1
  mul r0, r2
  mov r1, r0
  mov r0, 0      ; exit(r1)
  out 1, r0
  hlt
|}

let hc_by_name =
  [
    ("read", Wasp.Hc.read); ("write", Wasp.Hc.write); ("open", Wasp.Hc.open_);
    ("close", Wasp.Hc.close); ("stat", Wasp.Hc.stat); ("snapshot", Wasp.Hc.snapshot);
    ("get_data", Wasp.Hc.get_data); ("return_data", Wasp.Hc.return_data);
    ("send", Wasp.Hc.send); ("recv", Wasp.Hc.recv); ("brk", Wasp.Hc.brk);
    ("clock", Wasp.Hc.clock); ("getrandom", Wasp.Hc.getrandom);
  ]

let run file example mode allow all =
  let source =
    if example then Some example_source
    else match file with Some f -> Some (read_file f) | None -> None
  in
  match source with
  | None ->
      prerr_endline "error: pass an assembly file or --example";
      1
  | Some src -> (
      match Asm.assemble_string ~origin:Wasp.Layout.image_base src with
      | exception Asm.Asm_error msg ->
          Printf.eprintf "assembly error: %s\n" msg;
          1
      | program ->
          let image = Wasp.Image.of_program ~name:"wasprun" ~mode program in
          let policy =
            if all then Wasp.Policy.allow_all
            else
              Wasp.Policy.of_list
                (List.filter_map (fun n -> List.assoc_opt n hc_by_name) allow)
          in
          let w = Wasp.Runtime.create () in
          Printf.printf "loaded %d bytes at 0x%x (%s mode), policy %s\n"
            (Wasp.Image.size image) image.Wasp.Image.origin
            (Vm.Modes.to_string image.Wasp.Image.mode)
            (Format.asprintf "%a" Wasp.Policy.pp policy);
          let r = Wasp.Runtime.run w image ~policy () in
          if r.Wasp.Runtime.console <> "" then
            Printf.printf "--- console ---\n%s---------------\n" r.Wasp.Runtime.console;
          (match r.Wasp.Runtime.outcome with
          | Wasp.Runtime.Exited code ->
              Printf.printf "exited with %Ld  [%.1f us, %d hypercalls, %d denied]\n" code
                (Cycles.Clock.to_us (Wasp.Runtime.clock w) r.Wasp.Runtime.cycles)
                r.Wasp.Runtime.hypercalls r.Wasp.Runtime.denied;
              0
          | Wasp.Runtime.Faulted f ->
              Printf.printf "faulted: %s\n"
                (Format.asprintf "%a" Vm.Cpu.pp_exit (Vm.Cpu.Fault f));
              1
          | Wasp.Runtime.Fuel_exhausted ->
              print_endline "out of fuel";
              1))

let () =
  let file = Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.vxa") in
  let example = Arg.(value & flag & info [ "example" ] ~doc:"Run a built-in demo image") in
  let mode =
    let modes =
      [ ("real", Vm.Modes.Real); ("protected", Vm.Modes.Protected); ("long", Vm.Modes.Long) ]
    in
    Arg.(value & opt (enum modes) Vm.Modes.Long & info [ "m"; "mode" ])
  in
  let allow =
    Arg.(
      value
      & opt (list string) []
      & info [ "allow" ] ~docv:"HC,..." ~doc:"Hypercalls to permit (default deny)")
  in
  let all = Arg.(value & flag & info [ "permissive" ] ~doc:"Allow all hypercalls") in
  let cmd =
    Cmd.v
      (Cmd.info "wasprun" ~doc:"run a vx assembly image under the Wasp micro-hypervisor")
      Term.(const run $ file $ example $ mode $ allow $ all)
  in
  exit (Cmd.eval' cmd)
