bin/vcc_cli.ml: Arg Cmd Cmdliner Cycles Disasm Filename Format Int64 List Printf String Term Vcc Vm Wasp
