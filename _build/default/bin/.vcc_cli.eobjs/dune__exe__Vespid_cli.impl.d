bin/vespid_cli.ml: Arg Bytes Cmd Cmdliner Cycles List Printf Serverless Term Vjs Wasp
