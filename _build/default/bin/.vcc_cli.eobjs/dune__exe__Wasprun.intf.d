bin/wasprun.mli:
