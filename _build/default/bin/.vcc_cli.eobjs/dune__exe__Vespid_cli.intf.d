bin/vespid_cli.mli:
