bin/wasprun.ml: Arg Asm Cmd Cmdliner Cycles Format List Printf Term Vm Wasp
