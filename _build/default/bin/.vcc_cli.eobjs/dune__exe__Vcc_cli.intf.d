bin/vcc_cli.mli:
