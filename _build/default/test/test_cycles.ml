(* Tests for the virtual clock, RNG determinism, and the cost model. *)

open Cycles

let test_clock_starts_at_zero () =
  let c = Clock.create () in
  Alcotest.(check int64) "cycle 0" 0L (Clock.now c)

let test_clock_advance () =
  let c = Clock.create () in
  Clock.advance c 100L;
  Clock.advance_int c 23;
  Alcotest.(check int64) "advances accumulate" 123L (Clock.now c)

let test_clock_conversions () =
  let c = Clock.create ~freq_ghz:2.0 () in
  (* 2 GHz: 2000 cycles = 1000 ns = 1 us *)
  Alcotest.(check (float 1e-9)) "to_ns" 1000.0 (Clock.to_ns c 2000L);
  Alcotest.(check (float 1e-9)) "to_us" 1.0 (Clock.to_us c 2000L);
  Alcotest.(check (float 1e-12)) "to_ms" 0.001 (Clock.to_ms c 2000L)

let test_clock_of_us_roundtrip () =
  let c = Clock.create () in
  let cycles = Clock.of_us c 10.0 in
  Alcotest.(check (float 0.01)) "of_us/to_us roundtrip" 10.0 (Clock.to_us c cycles)

let test_clock_elapsed () =
  let c = Clock.create () in
  Clock.advance c 50L;
  let start = Clock.now c in
  Clock.advance c 25L;
  Alcotest.(check int64) "elapsed" 25L (Clock.elapsed_since c start)

let test_clock_default_freq () =
  let c = Clock.create () in
  Alcotest.(check (float 1e-9)) "tinker frequency" 2.69 (Clock.freq_ghz c)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_rng_int_bounds () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    Alcotest.(check bool) "in [0,10)" true (v >= 0 && v < 10)
  done

let test_rng_float_bounds () =
  let r = Rng.create ~seed:8 in
  for _ = 1 to 1000 do
    let v = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_split_independent () =
  let parent = Rng.create ~seed:3 in
  let child = Rng.split parent in
  (* children and parent produce different streams *)
  let equal_count = ref 0 in
  for _ = 1 to 50 do
    if Rng.int64 parent = Rng.int64 child then incr equal_count
  done;
  Alcotest.(check bool) "split streams diverge" true (!equal_count < 5)

let test_gaussian_moments () =
  let r = Rng.create ~seed:11 in
  let n = 20_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.gaussian r in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 0" true (abs_float mean < 0.05);
  Alcotest.(check bool) "variance near 1" true (abs_float (var -. 1.0) < 0.1)

let test_jitter_preserves_scale () =
  let r = Rng.create ~seed:12 in
  let base = 10_000 in
  let n = 5000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Costs.jitter r ~pct:0.05 base
  done;
  let mean = float_of_int !sum /. float_of_int n in
  (* lognormal with mu = -sigma^2/2 has mean 1, so the average is ~base *)
  Alcotest.(check bool)
    (Printf.sprintf "mean %.0f within 3%% of %d" mean base)
    true
    (abs_float (mean -. float_of_int base) < 0.03 *. float_of_int base)

let test_jitter_zero () =
  let r = Rng.create ~seed:13 in
  Alcotest.(check int) "zero stays zero" 0 (Costs.jitter r ~pct:0.5 0)

let test_jitter_nonnegative () =
  let r = Rng.create ~seed:14 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "nonnegative" true (Costs.jitter r ~pct:0.9 5 >= 0)
  done

let test_memcpy_cost_16mb () =
  (* Figure 12: a 16 MB image costs ~2.3 ms at 6.7-6.8 GB/s. *)
  let cycles = Costs.memcpy_cost (16 * 1024 * 1024) in
  let clock = Clock.create () in
  let ms = Clock.to_ms clock (Int64.of_int cycles) in
  Alcotest.(check bool) (Printf.sprintf "16MB copy = %.2f ms in [2.0, 2.8]" ms) true
    (ms > 2.0 && ms < 2.8)

let test_memcpy_cost_monotone () =
  Alcotest.(check bool) "monotone" true (Costs.memcpy_cost 1000 < Costs.memcpy_cost 2000)

let test_table1_paging_dominates () =
  (* Table 1 ordering: paging > protected transition > lgdt > long
     transition > jumps > first instruction. *)
  let paging = (514 * Costs.mem_cold) + Costs.ept_build in
  Alcotest.(check bool) "paging most expensive" true (paging > Costs.protected_transition);
  Alcotest.(check bool) "prot > lgdt is false (lgdt 4118 > 3217)" true
    (Costs.lgdt32 > Costs.protected_transition);
  Alcotest.(check bool) "long transition below prot" true
    (Costs.long_transition < Costs.protected_transition);
  Alcotest.(check bool) "jumps are negligible" true
    (Costs.ljmp32 < Costs.long_transition && Costs.ljmp64 < Costs.long_transition);
  Alcotest.(check bool) "first instruction cheapest" true
    (Costs.first_instruction < Costs.ljmp32)

let test_paging_near_paper_value () =
  (* Table 1 reports 28109 cycles for the identity map. *)
  let paging = (514 * Costs.mem_cold) + Costs.ept_build in
  Alcotest.(check bool)
    (Printf.sprintf "paging %d within 15%% of 28109" paging)
    true
    (abs_float (float_of_int paging -. 28109.0) < 0.15 *. 28109.0)

let test_vmrun_magnitude () =
  (* The vmrun lower bound must sit well below pthread creation and far
     below process creation (Figure 2). *)
  Alcotest.(check bool) "vmrun < pthread" true (Costs.vmrun_total < Costs.pthread_spawn_join);
  Alcotest.(check bool) "pthread < kvm create" true
    (Costs.pthread_spawn_join < Costs.kvm_create_vm);
  Alcotest.(check bool) "kvm create < process" true (Costs.kvm_create_vm < Costs.process_spawn)

let test_scheduler_outlier_rare () =
  let r = Rng.create ~seed:21 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    match Costs.scheduler_outlier r with Some _ -> incr hits | None -> ()
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "outlier rate %.4f in (0, 0.02)" rate) true
    (rate > 0.0 && rate < 0.02)

let () =
  Alcotest.run "cycles"
    [
      ( "clock",
        [
          Alcotest.test_case "starts at zero" `Quick test_clock_starts_at_zero;
          Alcotest.test_case "advance" `Quick test_clock_advance;
          Alcotest.test_case "conversions" `Quick test_clock_conversions;
          Alcotest.test_case "of_us roundtrip" `Quick test_clock_of_us_roundtrip;
          Alcotest.test_case "elapsed" `Quick test_clock_elapsed;
          Alcotest.test_case "default frequency" `Quick test_clock_default_freq;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
        ] );
      ( "costs",
        [
          Alcotest.test_case "jitter preserves scale" `Quick test_jitter_preserves_scale;
          Alcotest.test_case "jitter zero" `Quick test_jitter_zero;
          Alcotest.test_case "jitter nonnegative" `Quick test_jitter_nonnegative;
          Alcotest.test_case "memcpy 16MB ~2.3ms" `Quick test_memcpy_cost_16mb;
          Alcotest.test_case "memcpy monotone" `Quick test_memcpy_cost_monotone;
          Alcotest.test_case "table1 ordering" `Quick test_table1_paging_dominates;
          Alcotest.test_case "paging near 28109" `Quick test_paging_near_paper_value;
          Alcotest.test_case "figure2 ordering" `Quick test_vmrun_magnitude;
          Alcotest.test_case "scheduler outliers rare" `Quick test_scheduler_outlier_rare;
        ] );
    ]
