(* Tests for descriptive statistics and report rendering. *)

open Stats

let feq = Alcotest.(check (float 1e-9))

let test_mean () = feq "mean" 2.5 (Descriptive.mean [| 1.0; 2.0; 3.0; 4.0 |])

let test_mean_single () = feq "singleton" 7.0 (Descriptive.mean [| 7.0 |])

let test_mean_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Descriptive.mean") (fun () ->
      ignore (Descriptive.mean [||]))

let test_stddev () =
  (* sample sd of 2,4,4,4,5,5,7,9 = sqrt(32/7) *)
  feq "stddev" (sqrt (32.0 /. 7.0)) (Descriptive.stddev [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |])

let test_stddev_singleton () = feq "singleton sd" 0.0 (Descriptive.stddev [| 3.0 |])

let test_minmax () =
  let xs = [| 3.0; 1.0; 4.0; 1.5; 9.0 |] in
  feq "min" 1.0 (Descriptive.minimum xs);
  feq "max" 9.0 (Descriptive.maximum xs)

let test_percentile_median_odd () =
  feq "median odd" 3.0 (Descriptive.median [| 5.0; 3.0; 1.0 |])

let test_percentile_median_even () =
  feq "median even" 2.5 (Descriptive.median [| 4.0; 1.0; 3.0; 2.0 |])

let test_percentile_extremes () =
  let xs = [| 10.0; 20.0; 30.0 |] in
  feq "p0" 10.0 (Descriptive.percentile xs 0.0);
  feq "p100" 30.0 (Descriptive.percentile xs 100.0)

let test_percentile_interpolates () =
  feq "p25 of 1..5" 2.0 (Descriptive.percentile [| 1.; 2.; 3.; 4.; 5. |] 25.0)

let test_percentile_unsorted_input () =
  feq "unsorted" 2.0 (Descriptive.percentile [| 5.; 1.; 3.; 2.; 4. |] 25.0)

let test_percentile_out_of_range () =
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Descriptive.percentile: p outside [0,100]") (fun () ->
      ignore (Descriptive.percentile [| 1.0 |] 101.0))

let test_iqr () = feq "iqr of 1..5" 2.0 (Descriptive.iqr [| 1.; 2.; 3.; 4.; 5. |])

let test_tukey_removes_outlier () =
  let xs = Array.append (Array.init 50 (fun i -> float_of_int (i mod 10))) [| 1000.0 |] in
  let kept = Descriptive.tukey_filter xs in
  Alcotest.(check bool) "outlier removed" true
    (Array.for_all (fun x -> x < 100.0) kept);
  Alcotest.(check int) "one value removed" (Array.length xs - 1) (Array.length kept)

let test_tukey_keeps_clean_data () =
  let xs = Array.init 100 (fun i -> float_of_int (i mod 7)) in
  Alcotest.(check int) "nothing removed" (Array.length xs)
    (Array.length (Descriptive.tukey_filter xs))

let test_harmonic_mean () =
  (* harmonic mean of 1, 2, 4 = 3 / (1 + 0.5 + 0.25) = 12/7 *)
  feq "harmonic" (12.0 /. 7.0) (Descriptive.harmonic_mean [| 1.0; 2.0; 4.0 |])

let test_harmonic_mean_rejects_nonpositive () =
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Descriptive.harmonic_mean: nonpositive value") (fun () ->
      ignore (Descriptive.harmonic_mean [| 1.0; 0.0 |]))

let test_summary () =
  let s = Descriptive.summarize ~tukey:false (Array.init 101 (fun i -> float_of_int i)) in
  Alcotest.(check int) "n" 101 s.n;
  feq "mean" 50.0 s.mean;
  feq "p50" 50.0 s.p50;
  feq "min" 0.0 s.min;
  feq "max" 100.0 s.max

let test_summary_tukey_default () =
  let xs = Array.append (Array.init 99 (fun i -> float_of_int (i mod 5))) [| 1e9 |] in
  let s = Descriptive.summarize xs in
  Alcotest.(check bool) "outlier filtered by default" true (s.max < 10.0)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_table_renders () =
  let out = Report.table ~header:[ "name"; "value" ] [ [ "a"; "1" ]; [ "bb"; "22" ] ] in
  Alcotest.(check bool) "contains header" true (contains out "name");
  Alcotest.(check bool) "contains row" true (contains out "bb");
  Alcotest.(check bool) "contains rule" true (contains out "---")

let test_table_rejects_ragged_rows () =
  Alcotest.check_raises "ragged" (Invalid_argument "Report.table: row width mismatch")
    (fun () -> ignore (Report.table ~header:[ "a"; "b" ] [ [ "only-one" ] ]))

let test_table_alignment_width () =
  let out = Report.table ~header:[ "k"; "v" ] [ [ "xxxx"; "1" ] ] in
  (* every rendered row has the same width *)
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  let widths = List.map String.length lines in
  Alcotest.(check bool) "uniform width" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_bar_chart () =
  let out = Report.bar_chart [ ("small", 1.0); ("big", 10.0) ] in
  Alcotest.(check bool) "has bars" true (contains out "#");
  Alcotest.(check bool) "labels present" true (contains out "small" && contains out "big")

let test_bar_chart_log_rejects_nonpositive () =
  Alcotest.check_raises "log nonpositive"
    (Invalid_argument "Report.bar_chart: log of nonpositive value") (fun () ->
      ignore (Report.bar_chart ~log:true [ ("bad", 0.0) ]))

let test_series () =
  let out = Report.series ~header:[ "x"; "y" ] [ (1.0, [ 2.0 ]); (2.0, [ 4.0 ]) ] in
  Alcotest.(check bool) "x column" true (contains out "1.00");
  Alcotest.(check bool) "y column" true (contains out "4.00")

let () =
  Alcotest.run "stats"
    [
      ( "descriptive",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "mean singleton" `Quick test_mean_single;
          Alcotest.test_case "mean empty" `Quick test_mean_empty;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "stddev singleton" `Quick test_stddev_singleton;
          Alcotest.test_case "min/max" `Quick test_minmax;
          Alcotest.test_case "median odd" `Quick test_percentile_median_odd;
          Alcotest.test_case "median even" `Quick test_percentile_median_even;
          Alcotest.test_case "percentile extremes" `Quick test_percentile_extremes;
          Alcotest.test_case "percentile interpolation" `Quick test_percentile_interpolates;
          Alcotest.test_case "percentile unsorted" `Quick test_percentile_unsorted_input;
          Alcotest.test_case "percentile range check" `Quick test_percentile_out_of_range;
          Alcotest.test_case "iqr" `Quick test_iqr;
          Alcotest.test_case "tukey removes outlier" `Quick test_tukey_removes_outlier;
          Alcotest.test_case "tukey keeps clean data" `Quick test_tukey_keeps_clean_data;
          Alcotest.test_case "harmonic mean" `Quick test_harmonic_mean;
          Alcotest.test_case "harmonic mean positivity" `Quick
            test_harmonic_mean_rejects_nonpositive;
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "summary tukey default" `Quick test_summary_tukey_default;
        ] );
      ( "report",
        [
          Alcotest.test_case "table renders" `Quick test_table_renders;
          Alcotest.test_case "table rejects ragged rows" `Quick test_table_rejects_ragged_rows;
          Alcotest.test_case "table alignment" `Quick test_table_alignment_width;
          Alcotest.test_case "bar chart" `Quick test_bar_chart;
          Alcotest.test_case "bar chart log check" `Quick test_bar_chart_log_rejects_nonpositive;
          Alcotest.test_case "series" `Quick test_series;
        ] );
    ]
