(* Integration tests: full flows across the compiler, runtime, servers,
   engines and platforms -- the scenarios a downstream user would build. *)

module R = Wasp.Runtime

(* ------------------------------------------------------------------ *)
(* Scenario 1: a library with a sensitive function, isolated per call   *)
(* ------------------------------------------------------------------ *)

let test_sensitive_library_function () =
  (* a "parser" handling untrusted input is virtine-isolated; feeding it
     hostile input crashes only the virtine *)
  let src =
    {|
int g_limit = 8;
virtine int parse_header(int word, int len) {
  char buf[8];
  int i = 0;
  // deliberately missing bounds check against g_limit
  while (i < len) {
    buf[i] = word & 0xFF;
    word = word >> 8;
    i = i + 1;
  }
  return buf[0];
}
|}
  in
  let compiled = Vcc.Compile.compile src in
  let w = R.create () in
  (* benign input works *)
  let ok = Vcc.Compile.invoke w compiled "parse_header" [ 0x41L; 1L ] () in
  Alcotest.(check int64) "benign" 0x41L ok.R.return_value;
  (* hostile length smashes the virtine's stack, in isolation; a huge
     length eventually runs past the guest region and faults *)
  let evil = Vcc.Compile.invoke w compiled "parse_header" [ 0x41L; 1000000L ] () in
  (match evil.R.outcome with
  | R.Faulted _ | R.Fuel_exhausted -> ()
  | R.Exited _ -> ()
  (* overflow may also just corrupt virtine-private memory; the point is
     the host survives *));
  let again = Vcc.Compile.invoke w compiled "parse_header" [ 0x42L; 1L ] () in
  Alcotest.(check int64) "host and runtime unharmed" 0x42L again.R.return_value

(* ------------------------------------------------------------------ *)
(* Scenario 2: one runtime, many tenants                                *)
(* ------------------------------------------------------------------ *)

let test_multi_tenant_isolation () =
  (* two "tenants" run functions in the same Wasp runtime; tenant A's
     writes can never be observed by tenant B even though they reuse the
     same pooled shells *)
  let tenant_a =
    Vcc.Compile.compile ~name:"a"
      {|virtine int stash(int secret) {
          int *p = (int*) 1024;
          *p = secret;
          return 0;
        }|}
  in
  let tenant_b =
    Vcc.Compile.compile ~name:"b"
      {|virtine int probe() {
          int *p = (int*) 1024;
          return *p;
        }|}
  in
  let w = R.create () in
  for i = 1 to 5 do
    ignore (Vcc.Compile.invoke w tenant_a "stash" [ Int64.of_int (1000 + i) ] ());
    let r = Vcc.Compile.invoke w tenant_b "probe" [] () in
    Alcotest.(check int64) (Printf.sprintf "round %d: no cross-tenant leak" i) 0L
      r.R.return_value
  done

(* ------------------------------------------------------------------ *)
(* Scenario 3: end-to-end web service with virtine handlers             *)
(* ------------------------------------------------------------------ *)

let test_web_service_end_to_end () =
  let w = R.create ~clean:`Async () in
  let env = R.env w in
  Wasp.Hostenv.add_file env ~path:"/site/hello" "Hello, virtines!";
  Wasp.Hostenv.add_file env ~path:"/site/data" (String.make 512 'd');
  let compiled = Vhttp.Fileserver.compile ~snapshot:true in
  (* a client session: several requests through real HTTP bytes *)
  List.iter
    (fun (path, expect_status, expect_len) ->
      let served = Vhttp.Fileserver.serve_virtine w compiled ~path in
      Alcotest.(check int) (path ^ " status") expect_status served.Vhttp.Fileserver.status;
      Alcotest.(check int) (path ^ " length") expect_len
        (String.length served.Vhttp.Fileserver.body))
    [ ("/site/hello", 200, 16); ("/site/data", 200, 512); ("/site/missing", 404, 0) ];
  (* many requests reuse shells and the snapshot *)
  let stats = R.pool_stats w in
  Alcotest.(check bool) "pool reused shells" true (stats.Wasp.Pool.reused >= 2)

(* ------------------------------------------------------------------ *)
(* Scenario 4: serverless platform through the HTTP gateway             *)
(* ------------------------------------------------------------------ *)

let test_gateway_full_session () =
  let w = R.create ~clean:`Async () in
  let platform = Serverless.Vespid.create w in
  let g = Serverless.Gateway.create platform in
  let http meth path body =
    Serverless.Gateway.handle g
      (Vhttp.Http.request_to_string (Vhttp.Http.make_request ~body meth path))
  in
  let status raw =
    match Vhttp.Http.parse_response raw with
    | Ok r -> r.Vhttp.Http.status
    | Error e -> Alcotest.fail e
  in
  let body raw =
    match Vhttp.Http.parse_response raw with
    | Ok r -> r.Vhttp.Http.resp_body
    | Error e -> Alcotest.fail e
  in
  (* register the paper's base64 workload over HTTP *)
  let r = http "POST" "/register/b64?entry=encode" Vjs.Workload.base64_js_source in
  Alcotest.(check int) "registered" 201 (status r);
  (* invoke it repeatedly; results must match the host reference *)
  List.iter
    (fun payload ->
      let r = http "POST" "/invoke/b64" payload in
      Alcotest.(check int) "invoked" 200 (status r);
      Alcotest.(check string)
        ("encode " ^ payload)
        (Vcrypto.Base64.encode payload) (body r))
    [ "alpha"; "beta and gamma"; "" ];
  (* platform statistics confirm virtine reuse *)
  Alcotest.(check bool) "snapshots captured" true
    (Wasp.Snapshot_store.count (R.snapshots w) >= 1)

(* ------------------------------------------------------------------ *)
(* Scenario 5: encrypt-then-serve pipeline (three subsystems)           *)
(* ------------------------------------------------------------------ *)

let test_crypto_http_pipeline () =
  (* encrypt a document with the virtine-isolated cipher, store it in the
     host FS, serve it through the virtine file server, decrypt, compare *)
  let w = R.create ~clean:`Async () in
  let key = "super secret key" in
  let iv = Bytes.make 16 '\000' in
  let evp = Vcrypto.Evp.create (Vcrypto.Evp.Virtine w) ~key in
  let document = Bytes.of_string "attack at dawn (by the lake)" in
  let ciphertext = Vcrypto.Evp.encrypt evp ~iv document in
  Wasp.Hostenv.add_file (R.env w) ~path:"/vault/doc" (Bytes.to_string ciphertext);
  let compiled = Vhttp.Fileserver.compile ~snapshot:true in
  let served = Vhttp.Fileserver.serve_virtine w compiled ~path:"/vault/doc" in
  Alcotest.(check int) "served" 200 served.Vhttp.Fileserver.status;
  let ks = Vcrypto.Aes.expand_key key in
  (match Vcrypto.Aes.pkcs7_unpad
           (Vcrypto.Aes.decrypt_cbc ks ~iv (Bytes.of_string served.Vhttp.Fileserver.body))
   with
  | Some plain -> Alcotest.(check string) "roundtrip" (Bytes.to_string document) (Bytes.to_string plain)
  | None -> Alcotest.fail "bad padding after pipeline")

(* ------------------------------------------------------------------ *)
(* Scenario 6: futures fan-out                                          *)
(* ------------------------------------------------------------------ *)

let test_future_fan_out_fib () =
  let src = "virtine int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }" in
  let compiled = Vcc.Compile.compile src in
  let vi = Option.get (Vcc.Compile.find_virtine compiled "fib") in
  let w = R.create ~clean:`Async () in
  let futures =
    List.map
      (fun n ->
        Wasp.Future.spawn w vi.Vcc.Compile.image ~policy:vi.Vcc.Compile.policy
          ~args:[ Int64.of_int n ] ())
      [ 5; 6; 7; 8; 9; 10 ]
  in
  let results = Wasp.Future.join_all futures in
  Alcotest.(check (list int64)) "fan-out results" [ 5L; 8L; 13L; 21L; 34L; 55L ]
    (List.map (fun r -> r.R.return_value) results)

(* ------------------------------------------------------------------ *)
(* Scenario 7: trace-driven audit of a permissive virtine               *)
(* ------------------------------------------------------------------ *)

let test_trace_audit () =
  (* run the file server under a trace and audit exactly which host
     services the virtine touched -- the paper's interposition story *)
  let w = R.create () in
  let path = Vhttp.Fileserver.add_default_files (R.env w) in
  let compiled = Vhttp.Fileserver.compile ~snapshot:false in
  let tr = Wasp.Trace.create () in
  R.set_trace w (Some tr);
  ignore (Vhttp.Fileserver.serve_virtine w compiled ~path);
  let used = List.filter_map (fun (nr, ok) -> if ok then Some nr else None)
      (Wasp.Trace.hypercalls tr) in
  let expected =
    [ Wasp.Hc.read; Wasp.Hc.stat; Wasp.Hc.open_; Wasp.Hc.read; Wasp.Hc.write;
      Wasp.Hc.close; Wasp.Hc.exit_ ]
  in
  Alcotest.(check (list int)) "the paper's exact 7-hypercall sequence" expected used

let () =
  Alcotest.run "integration"
    [
      ( "scenarios",
        [
          Alcotest.test_case "sensitive library function" `Quick test_sensitive_library_function;
          Alcotest.test_case "multi-tenant isolation" `Quick test_multi_tenant_isolation;
          Alcotest.test_case "web service end-to-end" `Quick test_web_service_end_to_end;
          Alcotest.test_case "gateway full session" `Quick test_gateway_full_session;
          Alcotest.test_case "crypto+http pipeline" `Quick test_crypto_http_pipeline;
          Alcotest.test_case "futures fan-out" `Quick test_future_fan_out_fib;
          Alcotest.test_case "trace audit (7 hypercalls)" `Quick test_trace_audit;
        ] );
    ]
