test/test_stats.ml: Alcotest Array Descriptive List Report Stats String
