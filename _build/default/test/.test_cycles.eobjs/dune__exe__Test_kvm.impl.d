test/test_kvm.ml: Alcotest Cycles Encoding Instr Int64 Kvmsim Printf Vm
