test/test_vcc.mli:
