test/test_vcrypto.ml: Alcotest Bytes Char Cycles Hashtbl Int64 List Printf QCheck QCheck_alcotest String Vcrypto Wasp
