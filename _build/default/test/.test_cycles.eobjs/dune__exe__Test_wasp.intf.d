test/test_wasp.mli:
