test/test_serverless.ml: Alcotest Array Bytes Cycles Int64 List Printf Serverless Stats Vjs Wasp
