test/test_wasp.ml: Alcotest Asm Bytes Int64 List Printf Vcc Vjs Vm Wasp
