test/test_extensions.ml: Alcotest Asm Bytes Cycles Disasm Encoding Format Instr Int64 List Serverless String Vhttp Wasp
