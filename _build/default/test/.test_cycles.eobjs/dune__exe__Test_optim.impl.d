test/test_optim.ml: Alcotest Asm Cycles List Printf String Vcc Wasp
