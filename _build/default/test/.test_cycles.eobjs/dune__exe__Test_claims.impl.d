test/test_claims.ml: Alcotest Array Baselines Cycles Int64 Kvmsim List Printf Stats Vcc Vhttp Vjs Vm Wasp
