test/test_vjs.ml: Alcotest Cycles List Printf String Vjs Wasp
