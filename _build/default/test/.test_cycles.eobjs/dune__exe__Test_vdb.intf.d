test/test_vdb.mli:
