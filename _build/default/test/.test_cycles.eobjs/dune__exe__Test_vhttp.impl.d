test/test_vhttp.ml: Alcotest Bytes Cycles Int64 List Printf String Vcc Vhttp Wasp
