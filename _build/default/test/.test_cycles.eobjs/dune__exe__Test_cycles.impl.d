test/test_cycles.ml: Alcotest Clock Costs Cycles Int64 Printf Rng
