test/test_isa.ml: Alcotest Asm Bytes Encoding Instr Int64 List QCheck QCheck_alcotest String
