test/test_cpu_prop.mli:
