test/test_integration.ml: Alcotest Bytes Int64 List Option Printf Serverless String Vcc Vcrypto Vhttp Vjs Wasp
