test/test_vhttp.mli:
