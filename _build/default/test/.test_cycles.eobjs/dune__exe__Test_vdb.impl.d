test/test_vdb.ml: Alcotest Hashtbl List Vdb Vjs Wasp
