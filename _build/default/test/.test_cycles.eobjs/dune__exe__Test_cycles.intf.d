test/test_cycles.mli:
