test/test_diff.ml: Alcotest Array Bytes Char Cycles Int64 List Printf QCheck QCheck_alcotest String Vcc Wasp
