test/test_vcc.ml: Alcotest Asm Char Cycles Int64 List Printf String Vcc Vm Wasp
