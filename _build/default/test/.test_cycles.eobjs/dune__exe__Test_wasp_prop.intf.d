test/test_wasp_prop.mli:
