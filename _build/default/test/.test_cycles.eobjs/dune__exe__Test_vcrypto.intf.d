test/test_vcrypto.mli:
