test/test_baselines.ml: Alcotest Array Baselines Int64 Kvmsim Printf Stats Vm Wasp
