test/test_dessim.ml: Alcotest Cycles Dessim Int64 List
