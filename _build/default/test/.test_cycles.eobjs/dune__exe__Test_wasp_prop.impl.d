test/test_wasp_prop.ml: Alcotest Bytes Cycles Int64 Kvmsim List Option Printf QCheck QCheck_alcotest String Vm Wasp
