test/test_vm.ml: Alcotest Asm Bytes Cycles Format Int64 List Printf Vm
