test/test_serverless.mli:
