test/test_cpu_prop.ml: Alcotest Asm Bytes Cycles Encoding Format Instr Int64 List Option Printf QCheck QCheck_alcotest Vm
