test/test_vjs.mli:
