(* Tests for the database substrate: tables, virtine-isolated UDFs, and
   the query executor (the §7.1 UDF scenario). *)

module T = Vdb.Table
module V = Vjs.Jsvalue

let people () =
  let t =
    T.create ~name:"people" [ ("id", T.Tint); ("name", T.Ttext); ("age", T.Tint) ]
  in
  T.insert_all t
    [
      [ T.Int 1L; T.Text "ada"; T.Int 36L ];
      [ T.Int 2L; T.Text "grace"; T.Int 85L ];
      [ T.Int 3L; T.Text "alan"; T.Int 41L ];
      [ T.Int 4L; T.Text "edsger"; T.Int 72L ];
    ];
  t

let setup () =
  let w = Wasp.Runtime.create ~clean:`Async () in
  (Vdb.Udf.create w, people ())

(* ------------------------------------------------------------------ *)
(* Tables                                                               *)
(* ------------------------------------------------------------------ *)

let test_table_basics () =
  let t = people () in
  Alcotest.(check int) "4 rows" 4 (T.length t);
  Alcotest.(check (option int)) "column index" (Some 2) (T.column_index t "age");
  Alcotest.(check (option int)) "missing column" None (T.column_index t "salary")

let test_table_schema_validation () =
  let t = people () in
  Alcotest.check_raises "arity" (T.Schema_error "table people: expected 3 values, got 1")
    (fun () -> T.insert t [ T.Int 9L ]);
  (match T.insert t [ T.Int 9L; T.Int 9L; T.Int 9L ] with
  | exception T.Schema_error _ -> ()
  | _ -> Alcotest.fail "type mismatch accepted");
  (match T.create ~name:"bad" [ ("x", T.Tint); ("x", T.Ttext) ] with
  | exception T.Schema_error _ -> ()
  | _ -> Alcotest.fail "duplicate column accepted");
  match T.create ~name:"empty" [] with
  | exception T.Schema_error _ -> ()
  | _ -> Alcotest.fail "empty schema accepted"

let test_row_to_js_roundtrip () =
  let t = people () in
  let row = List.hd (T.rows t) in
  match Vdb.Query.row_to_js t row with
  | V.Obj tbl ->
      Alcotest.(check bool) "name field" true (Hashtbl.find tbl "name" = V.Str "ada");
      Alcotest.(check bool) "age field" true (Hashtbl.find tbl "age" = V.Num 36.0)
  | _ -> Alcotest.fail "expected object"

(* ------------------------------------------------------------------ *)
(* JS UDFs                                                              *)
(* ------------------------------------------------------------------ *)

let adults_src = "function adults(row) { return row.age >= 40; }"
let shout_src = "function shout(row) { return row.name.toUpperCase(); }"

let test_select_where_per_query () =
  let udfs, t = setup () in
  Vdb.Udf.register_js udfs ~name:"adults" ~source:adults_src ~entry:"adults";
  match Vdb.Query.select udfs t ~where_:"adults" () with
  | Ok rows ->
      Alcotest.(check int) "three adults" 3 (List.length rows);
      Alcotest.(check bool) "ada filtered out" true
        (List.for_all
           (fun row -> not (T.value_equal (List.nth row 1) (T.Text "ada")))
           rows)
  | Error e -> Alcotest.fail e

let test_select_where_per_row () =
  let udfs, t = setup () in
  Vdb.Udf.register_js udfs ~name:"adults" ~source:adults_src ~entry:"adults";
  match Vdb.Query.select udfs t ~where_:"adults" ~isolation:Vdb.Query.Per_row () with
  | Ok rows -> Alcotest.(check int) "same answer as per-query" 3 (List.length rows)
  | Error e -> Alcotest.fail e

let test_select_project () =
  let udfs, t = setup () in
  Vdb.Udf.register_js udfs ~name:"shout" ~source:shout_src ~entry:"shout";
  match Vdb.Query.select udfs t ~project:"shout" () with
  | Ok rows ->
      Alcotest.(check int) "all rows" 4 (List.length rows);
      Alcotest.(check bool) "projected" true
        (List.mem [ T.Text "GRACE" ] rows && List.mem [ T.Text "ADA" ] rows)
  | Error e -> Alcotest.fail e

let test_select_where_and_project () =
  let udfs, t = setup () in
  Vdb.Udf.register_js udfs ~name:"adults" ~source:adults_src ~entry:"adults";
  Vdb.Udf.register_js udfs ~name:"shout" ~source:shout_src ~entry:"shout";
  match Vdb.Query.select udfs t ~where_:"adults" ~project:"shout" () with
  | Ok rows ->
      Alcotest.(check bool) "grace shouted" true (List.mem [ T.Text "GRACE" ] rows);
      Alcotest.(check bool) "no ada" true (not (List.mem [ T.Text "ADA" ] rows))
  | Error e -> Alcotest.fail e

let test_isolation_levels_agree () =
  let udfs, t = setup () in
  Vdb.Udf.register_js udfs ~name:"adults" ~source:adults_src ~entry:"adults";
  Vdb.Udf.register_js udfs ~name:"shout" ~source:shout_src ~entry:"shout";
  let run isolation =
    Vdb.Query.select udfs t ~where_:"adults" ~project:"shout" ~isolation ()
  in
  match (run Vdb.Query.Per_query, run Vdb.Query.Per_row) with
  | Ok a, Ok b -> Alcotest.(check bool) "identical results" true (a = b)
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_hostile_udf_contained () =
  let udfs, t = setup () in
  Vdb.Udf.register_js udfs ~name:"evil"
    ~source:"function evil(row) { while (true) { } }" ~entry:"evil";
  Vdb.Udf.register_js udfs ~name:"adults" ~source:adults_src ~entry:"adults";
  (match Vdb.Query.select udfs t ~where_:"evil" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "hostile UDF should fail");
  (* the engine survives and other UDFs still work *)
  match Vdb.Query.select udfs t ~where_:"adults" () with
  | Ok rows -> Alcotest.(check int) "still works" 3 (List.length rows)
  | Error e -> Alcotest.fail e

let test_udfs_isolated_from_each_other () =
  (* a UDF that tries to poison global state cannot affect later
     evaluations: each per-row call restores the snapshot *)
  let udfs, t = setup () in
  Vdb.Udf.register_js udfs ~name:"sneaky"
    ~source:
      {|var counter = 0;
        function sneaky(row) { counter = counter + 1; return counter; }|}
    ~entry:"sneaky";
  match Vdb.Query.select udfs t ~project:"sneaky" ~isolation:Vdb.Query.Per_row () with
  | Ok rows ->
      (* per-row isolation: every call sees a fresh counter = 1 *)
      Alcotest.(check bool) "no state carried across rows" true
        (List.for_all (fun r -> r = [ T.Int 1L ]) rows)
  | Error e -> Alcotest.fail e

let test_batch_mode_shares_state_within_query () =
  (* the flip side: per-query isolation runs all rows in one virtine, so
     the counter increments across rows (and resets across queries) *)
  let udfs, t = setup () in
  Vdb.Udf.register_js udfs ~name:"sneaky"
    ~source:
      {|var counter = 0;
        function sneaky(row) { counter = counter + 1; return counter; }|}
    ~entry:"sneaky";
  let run () = Vdb.Query.select udfs t ~project:"sneaky" ~isolation:Vdb.Query.Per_query () in
  match (run (), run ()) with
  | Ok first, Ok second ->
      Alcotest.(check bool) "counts within query" true
        (first = [ [ T.Int 1L ]; [ T.Int 2L ]; [ T.Int 3L ]; [ T.Int 4L ] ]);
      Alcotest.(check bool) "reset across queries" true (first = second)
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_unknown_udf () =
  let udfs, t = setup () in
  match Vdb.Query.select udfs t ~where_:"ghost" () with
  | exception Vdb.Udf.Unknown_udf "ghost" -> ()
  | _ -> Alcotest.fail "expected Unknown_udf"

let test_native_udf_baseline () =
  let udfs, t = setup () in
  Vdb.Udf.register_native udfs ~name:"adults" (fun row ->
      match row with
      | V.Obj tbl -> (
          match Hashtbl.find_opt tbl "age" with
          | Some (V.Num age) -> Ok (V.Bool (age >= 40.0))
          | _ -> Error "no age")
      | _ -> Error "not a row");
  match Vdb.Query.select udfs t ~where_:"adults" () with
  | Ok rows -> Alcotest.(check int) "native matches" 3 (List.length rows)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* C UDFs                                                               *)
(* ------------------------------------------------------------------ *)

let test_c_udf () =
  (* "virtines would allow functions in unsafe languages to be safely
     used for UDFs": predicate over (id, age) int columns *)
  let udfs, t = setup () in
  Vdb.Udf.register_c udfs ~name:"age_over_40"
    ~source:"virtine int pred(int id, int age) { return age > 40; }" ~fn:"pred";
  match Vdb.Query.select_c udfs t ~where_:"age_over_40" () with
  | Ok rows -> Alcotest.(check int) "grace, alan, edsger" 3 (List.length rows)
  | Error e -> Alcotest.fail e

let test_c_udf_crash_contained () =
  let udfs, t = setup () in
  Vdb.Udf.register_c udfs ~name:"crash"
    ~source:"virtine int pred(int id, int age) { int *p = (int*) 900000000; return *p; }"
    ~fn:"pred";
  (match Vdb.Query.select_c udfs t ~where_:"crash" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "crashing UDF should error");
  (* engine survives *)
  Vdb.Udf.register_c udfs ~name:"ok"
    ~source:"virtine int pred(int id, int age) { return 1; }" ~fn:"pred";
  match Vdb.Query.select_c udfs t ~where_:"ok" () with
  | Ok rows -> Alcotest.(check int) "all rows" 4 (List.length rows)
  | Error e -> Alcotest.fail e

let test_kind_and_registry () =
  let udfs, _ = setup () in
  Vdb.Udf.register_js udfs ~name:"a" ~source:adults_src ~entry:"adults";
  Vdb.Udf.register_native udfs ~name:"b" (fun _ -> Ok V.Null);
  Vdb.Udf.register_c udfs ~name:"c"
    ~source:"virtine int f(int x) { return x; }" ~fn:"f";
  Alcotest.(check (list string)) "registry" [ "a"; "b"; "c" ] (Vdb.Udf.registered udfs);
  Alcotest.(check bool) "kinds" true
    (Vdb.Udf.kind_of udfs "a" = Vdb.Udf.Js
    && Vdb.Udf.kind_of udfs "b" = Vdb.Udf.Native
    && Vdb.Udf.kind_of udfs "c" = Vdb.Udf.C)

let test_js_to_value_conversions () =
  Alcotest.(check bool) "num" true (Vdb.Query.js_to_value (V.Num 41.9) = T.Int 41L);
  Alcotest.(check bool) "str" true (Vdb.Query.js_to_value (V.Str "x") = T.Text "x");
  Alcotest.(check bool) "bool" true (Vdb.Query.js_to_value (V.Bool true) = T.Int 1L);
  Alcotest.(check bool) "null" true (Vdb.Query.js_to_value V.Null = T.Int 0L);
  match Vdb.Query.js_to_value (V.Arr (V.vec_of_list [ V.Num 1.0 ])) with
  | T.Text json -> Alcotest.(check string) "array as json" "[1]" json
  | _ -> Alcotest.fail "expected text"

let () =
  Alcotest.run "vdb"
    [
      ( "tables",
        [
          Alcotest.test_case "basics" `Quick test_table_basics;
          Alcotest.test_case "schema validation" `Quick test_table_schema_validation;
          Alcotest.test_case "row to js" `Quick test_row_to_js_roundtrip;
        ] );
      ( "js-udfs",
        [
          Alcotest.test_case "where per-query" `Quick test_select_where_per_query;
          Alcotest.test_case "where per-row" `Quick test_select_where_per_row;
          Alcotest.test_case "project" `Quick test_select_project;
          Alcotest.test_case "where + project" `Quick test_select_where_and_project;
          Alcotest.test_case "isolation levels agree" `Quick test_isolation_levels_agree;
          Alcotest.test_case "hostile UDF contained" `Quick test_hostile_udf_contained;
          Alcotest.test_case "UDFs isolated from each other" `Quick
            test_udfs_isolated_from_each_other;
          Alcotest.test_case "batch shares state within query" `Quick
            test_batch_mode_shares_state_within_query;
          Alcotest.test_case "unknown UDF" `Quick test_unknown_udf;
          Alcotest.test_case "native baseline" `Quick test_native_udf_baseline;
        ] );
      ( "c-udfs",
        [
          Alcotest.test_case "integer predicate" `Quick test_c_udf;
          Alcotest.test_case "crash contained" `Quick test_c_udf_crash_contained;
        ] );
      ( "conversions",
        [
          Alcotest.test_case "registry kinds" `Quick test_kind_and_registry;
          Alcotest.test_case "js to value" `Quick test_js_to_value_conversions;
        ] );
    ]
