(* Differential testing of the vcc compiler: random expressions are
   compiled to vx code and executed, and the result is compared against a
   reference evaluator with C-on-x86 semantics (64-bit wrapping
   arithmetic, masked shift counts, truncating division). Also covers
   virtine-vs-native equivalence and image fault injection. *)

(* ------------------------------------------------------------------ *)
(* Random expression generator                                          *)
(* ------------------------------------------------------------------ *)

type expr =
  | Lit of int64
  | Var of int                   (* parameter index 0..2 *)
  | Un of string * expr
  | Bin of string * expr * expr
  | DivSafe of expr * int64      (* division by a nonzero literal *)
  | Cond of expr * expr * expr

let binops = [| "+"; "-"; "*"; "&"; "|"; "^"; "<<"; ">>"; "<"; "<="; ">"; ">="; "=="; "!=" |]
let unops = [| "-"; "~"; "!" |]

let gen_expr rng depth =
  let open QCheck.Gen in
  let rec go depth =
    if depth = 0 then
      oneof
        [
          map (fun v -> Lit (Int64.of_int v)) (int_range (-1000) 1000);
          map (fun i -> Var i) (int_range 0 2);
        ]
    else
      frequency
        [
          (2, map (fun v -> Lit (Int64.of_int v)) (int_range (-1000) 1000));
          (2, map (fun i -> Var i) (int_range 0 2));
          ( 3,
            let* op = oneofl (Array.to_list binops) in
            let* a = go (depth - 1) in
            let* b = go (depth - 1) in
            return (Bin (op, a, b)) );
          ( 1,
            let* op = oneofl (Array.to_list unops) in
            let* a = go (depth - 1) in
            return (Un (op, a)) );
          ( 1,
            let* a = go (depth - 1) in
            let* d = int_range 1 97 in
            return (DivSafe (a, Int64.of_int d)) );
          ( 1,
            let* c = go (depth - 1) in
            let* a = go (depth - 1) in
            let* b = go (depth - 1) in
            return (Cond (c, a, b)) );
        ]
  in
  go depth rng

(* render to virtine C *)
let rec to_c = function
  | Lit v -> if v < 0L then Printf.sprintf "(0 - %Ld)" (Int64.neg v) else Int64.to_string v
  | Var 0 -> "a"
  | Var 1 -> "b"
  | Var _ -> "c"
  | Un ("!", a) -> Printf.sprintf "(!%s)" (to_c a)
  | Un (op, a) -> Printf.sprintf "(%s%s)" op (to_c a)
  | Bin (op, a, b) -> Printf.sprintf "(%s %s %s)" (to_c a) op (to_c b)
  | DivSafe (a, d) -> Printf.sprintf "(%s / %Ld)" (to_c a) d
  | Cond (c, a, b) -> Printf.sprintf "(%s ? %s : %s)" (to_c c) (to_c a) (to_c b)

(* reference evaluation with the target semantics *)
let rec eval env = function
  | Lit v -> v
  | Var i -> env.(i)
  | Un ("-", a) -> Int64.neg (eval env a)
  | Un ("~", a) -> Int64.lognot (eval env a)
  | Un ("!", a) -> if eval env a = 0L then 1L else 0L
  | Un (_, a) -> eval env a
  | Bin (op, a, b) -> (
      let x = eval env a in
      (* && / || would short-circuit; none generated *)
      let y = eval env b in
      let bool_ c = if c then 1L else 0L in
      match op with
      | "+" -> Int64.add x y
      | "-" -> Int64.sub x y
      | "*" -> Int64.mul x y
      | "&" -> Int64.logand x y
      | "|" -> Int64.logor x y
      | "^" -> Int64.logxor x y
      | "<<" -> Int64.shift_left x (Int64.to_int (Int64.logand y 63L))
      | ">>" -> Int64.shift_right_logical x (Int64.to_int (Int64.logand y 63L))
      | "<" -> bool_ (Int64.compare x y < 0)
      | "<=" -> bool_ (Int64.compare x y <= 0)
      | ">" -> bool_ (Int64.compare x y > 0)
      | ">=" -> bool_ (Int64.compare x y >= 0)
      | "==" -> bool_ (x = y)
      | "!=" -> bool_ (x <> y)
      | _ -> failwith "unknown op")
  | DivSafe (a, d) -> Int64.div (eval env a) d
  | Cond (c, a, b) -> if eval env c <> 0L then eval env a else eval env b

let print_case (e, args) =
  Printf.sprintf "f(%s) where f returns %s"
    (String.concat ", " (Array.to_list (Array.map Int64.to_string args)))
    (to_c e)

let gen_case =
  QCheck.Gen.(
    let* e = fun rng -> gen_expr rng 4 in
    let* args = array_size (return 3) (map Int64.of_int (int_range (-10000) 10000)) in
    return (e, args))

let arb_case = QCheck.make ~print:print_case gen_case

let compile_expr e =
  Vcc.Compile.compile ~snapshot:false
    (Printf.sprintf "int f(int a, int b, int c) { return %s; }" (to_c e))

let prop_native_matches_reference =
  QCheck.Test.make ~name:"compiled code matches reference semantics" ~count:250 arb_case
    (fun (e, args) ->
      let expected = eval args e in
      let compiled = compile_expr e in
      let clock = Cycles.Clock.create () in
      let got =
        Vcc.Compile.invoke_native ~clock compiled "f" (Array.to_list args) ()
      in
      got = expected)

let prop_optimizer_preserves_semantics =
  QCheck.Test.make ~name:"optimizer preserves semantics" ~count:150 arb_case
    (fun (e, args) ->
      let src = Printf.sprintf "int f(int a, int b, int c) { return %s; }" (to_c e) in
      let plain = Vcc.Compile.compile ~snapshot:false ~optimize:false src in
      let opt = Vcc.Compile.compile ~snapshot:false ~optimize:true src in
      let clock = Cycles.Clock.create () in
      Vcc.Compile.invoke_native ~clock plain "f" (Array.to_list args) ()
      = Vcc.Compile.invoke_native ~clock opt "f" (Array.to_list args) ())

let prop_virtine_matches_native =
  QCheck.Test.make ~name:"virtine result equals native result" ~count:40 arb_case
    (fun (e, args) ->
      let src = Printf.sprintf "virtine int f(int a, int b, int c) { return %s; }" (to_c e) in
      let compiled = Vcc.Compile.compile ~snapshot:false src in
      let clock = Cycles.Clock.create () in
      let native = Vcc.Compile.invoke_native ~clock compiled "f" (Array.to_list args) () in
      let w = Wasp.Runtime.create () in
      let r = Vcc.Compile.invoke w compiled "f" (Array.to_list args) () in
      r.Wasp.Runtime.return_value = native)

(* statement-level differential templates *)
let prop_loop_sum_matches =
  QCheck.Test.make ~name:"loop templates match reference" ~count:60
    QCheck.(pair (int_range 0 60) (int_range 1 9))
    (fun (n, step) ->
      let src =
        Printf.sprintf
          "int f(int n) { int s = 0; for (int i = 0; i < n; i = i + %d) { s = s + i; } return s; }"
          step
      in
      let compiled = Vcc.Compile.compile src in
      let clock = Cycles.Clock.create () in
      let got = Vcc.Compile.invoke_native ~clock compiled "f" [ Int64.of_int n ] () in
      let expected =
        let s = ref 0 and i = ref 0 in
        while !i < n do
          s := !s + !i;
          i := !i + step
        done;
        Int64.of_int !s
      in
      got = expected)

(* ------------------------------------------------------------------ *)
(* Fault injection: corrupted images must be contained                  *)
(* ------------------------------------------------------------------ *)

let fib_image =
  let c =
    Vcc.Compile.compile ~snapshot:false
      "virtine int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }"
  in
  match Vcc.Compile.find_virtine c "fib" with
  | Some vi -> vi.Vcc.Compile.image
  | None -> assert false

let prop_corrupted_images_contained =
  QCheck.Test.make ~name:"bit-flipped images never escape isolation" ~count:150
    QCheck.(pair (int_bound (Wasp.Image.size fib_image - 1)) (int_range 1 255))
    (fun (offset, flip) ->
      let code = Bytes.copy fib_image.Wasp.Image.code in
      Bytes.set code offset
        (Char.chr (Char.code (Bytes.get code offset) lxor flip));
      let image = { fib_image with Wasp.Image.code = code } in
      let w = Wasp.Runtime.create () in
      let r = Wasp.Runtime.run w image ~args:[ 8L ] ~fuel:200_000 () in
      (* any outcome is fine -- what matters is that the host survived and
         the runtime still works afterwards *)
      ignore r.Wasp.Runtime.outcome;
      let check = Wasp.Runtime.run w fib_image ~args:[ 8L ] () in
      check.Wasp.Runtime.return_value = 21L)

let prop_snapshot_restore_is_exact =
  QCheck.Test.make ~name:"snapshot restore reproduces results exactly" ~count:30
    QCheck.(int_range 0 15)
    (fun n ->
      let src = "virtine int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }" in
      let compiled = Vcc.Compile.compile ~snapshot:true src in
      let w = Wasp.Runtime.create () in
      let arg = Int64.of_int n in
      let r1 = Vcc.Compile.invoke w compiled "fib" [ arg ] () in
      let r2 = Vcc.Compile.invoke w compiled "fib" [ arg ] () in
      let r3 = Vcc.Compile.invoke w compiled "fib" [ arg ] () in
      r1.Wasp.Runtime.return_value = r2.Wasp.Runtime.return_value
      && r2.Wasp.Runtime.return_value = r3.Wasp.Runtime.return_value
      && r3.Wasp.Runtime.from_snapshot)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "differential"
    [
      qsuite "compiler"
        [
          prop_native_matches_reference;
          prop_optimizer_preserves_semantics;
          prop_virtine_matches_native;
          prop_loop_sum_matches;
        ];
      qsuite "robustness" [ prop_corrupted_images_contained; prop_snapshot_restore_is_exact ];
    ]
