(* Tests for AES-128 (FIPS-197 vectors), base64 (RFC 4648), and the EVP
   layer's native/virtine equivalence. *)

let hex s =
  let n = String.length s / 2 in
  Bytes.init n (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let to_hex b =
  String.concat "" (List.init (Bytes.length b) (fun i -> Printf.sprintf "%02x" (Char.code (Bytes.get b i))))

(* FIPS-197 Appendix B *)
let fips_key = "\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7\x15\x88\x09\xcf\x4f\x3c"
let fips_plain = hex "3243f6a8885a308d313198a2e0370734"
let fips_cipher = "3925841d02dc09fbdc118597196a0b32"

let test_aes_fips197 () =
  let ks = Vcrypto.Aes.expand_key fips_key in
  let out = Vcrypto.Aes.encrypt_block ks fips_plain ~pos:0 in
  Alcotest.(check string) "FIPS-197 Appendix B" fips_cipher (to_hex out)

(* NIST SP 800-38A F.1.1: AES-128 ECB *)
let nist_key = "\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7\x15\x88\x09\xcf\x4f\x3c"

let nist_ecb_vectors =
  [
    ("6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97");
    ("ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf");
    ("30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688");
    ("f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4");
  ]

let test_aes_nist_ecb () =
  let ks = Vcrypto.Aes.expand_key nist_key in
  List.iter
    (fun (p, c) ->
      let out = Vcrypto.Aes.encrypt_block ks (hex p) ~pos:0 in
      Alcotest.(check string) ("ECB " ^ p) c (to_hex out))
    nist_ecb_vectors

(* NIST SP 800-38A F.2.1: AES-128 CBC *)
let test_aes_nist_cbc () =
  let ks = Vcrypto.Aes.expand_key nist_key in
  let iv = hex "000102030405060708090a0b0c0d0e0f" in
  let plain = hex (String.concat "" (List.map fst nist_ecb_vectors)) in
  let expected =
    "7649abac8119b246cee98e9b12e9197d5086cb9b507219ee95db113a917678b2\
     73bed6b8e3c1743b7116e69e222295163ff1caa1681fac09120eca307586e1a7"
  in
  let out = Vcrypto.Aes.encrypt_cbc ks ~iv plain in
  Alcotest.(check string) "NIST CBC" expected (to_hex out)

let test_aes_decrypt_inverts () =
  let ks = Vcrypto.Aes.expand_key "0123456789abcdef" in
  let plain = Bytes.of_string "a secret message" in
  let enc = Vcrypto.Aes.encrypt_block ks plain ~pos:0 in
  let dec = Vcrypto.Aes.decrypt_block ks enc ~pos:0 in
  Alcotest.(check string) "block roundtrip" (Bytes.to_string plain) (Bytes.to_string dec)

let test_aes_bad_key_length () =
  Alcotest.check_raises "short key" (Invalid_argument "Aes.expand_key: key must be 16 bytes")
    (fun () -> ignore (Vcrypto.Aes.expand_key "short"))

let test_aes_bad_block_length () =
  let ks = Vcrypto.Aes.expand_key "0123456789abcdef" in
  match Vcrypto.Aes.encrypt_ecb ks (Bytes.create 15) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let prop_ecb_roundtrip =
  QCheck.Test.make ~name:"ECB decrypt . encrypt = id" ~count:100
    QCheck.(pair (string_of_size (QCheck.Gen.return 16)) (list_of_size (QCheck.Gen.int_range 1 8) (QCheck.int_bound 255)))
    (fun (key, _) ->
      let ks = Vcrypto.Aes.expand_key key in
      let rng = Cycles.Rng.create ~seed:(Hashtbl.hash key) in
      let data = Bytes.init 64 (fun _ -> Char.chr (Cycles.Rng.int rng 256)) in
      Vcrypto.Aes.decrypt_ecb ks (Vcrypto.Aes.encrypt_ecb ks data) = data)

let prop_cbc_roundtrip =
  QCheck.Test.make ~name:"CBC decrypt . encrypt = id" ~count:100
    QCheck.(string_of_size (QCheck.Gen.return 16))
    (fun key ->
      let ks = Vcrypto.Aes.expand_key key in
      let rng = Cycles.Rng.create ~seed:(Hashtbl.hash key) in
      let iv = Bytes.init 16 (fun _ -> Char.chr (Cycles.Rng.int rng 256)) in
      let data = Bytes.init 80 (fun _ -> Char.chr (Cycles.Rng.int rng 256)) in
      Vcrypto.Aes.decrypt_cbc ks ~iv (Vcrypto.Aes.encrypt_cbc ks ~iv data) = data)

let prop_pkcs7_roundtrip =
  QCheck.Test.make ~name:"pkcs7 unpad . pad = id" ~count:200 QCheck.(string_of_size (QCheck.Gen.int_range 0 100))
    (fun s ->
      let b = Bytes.of_string s in
      match Vcrypto.Aes.pkcs7_unpad (Vcrypto.Aes.pkcs7_pad b) with
      | Some out -> out = b
      | None -> false)

let test_pkcs7_malformed () =
  Alcotest.(check bool) "zero pad byte invalid" true
    (Vcrypto.Aes.pkcs7_unpad (Bytes.make 16 '\000') = None);
  Alcotest.(check bool) "pad > 16 invalid" true
    (Vcrypto.Aes.pkcs7_unpad (Bytes.make 16 '\xFF') = None)

(* ------------------------------------------------------------------ *)
(* base64                                                               *)
(* ------------------------------------------------------------------ *)

let test_base64_rfc_vectors () =
  (* RFC 4648 §10 *)
  List.iter
    (fun (plain, enc) ->
      Alcotest.(check string) ("encode " ^ plain) enc (Vcrypto.Base64.encode plain);
      Alcotest.(check (option string)) ("decode " ^ enc) (Some plain) (Vcrypto.Base64.decode enc))
    [
      ("", "");
      ("f", "Zg==");
      ("fo", "Zm8=");
      ("foo", "Zm9v");
      ("foob", "Zm9vYg==");
      ("fooba", "Zm9vYmE=");
      ("foobar", "Zm9vYmFy");
    ]

let test_base64_binary () =
  let all = String.init 256 Char.chr in
  Alcotest.(check (option string)) "all byte values" (Some all)
    (Vcrypto.Base64.decode (Vcrypto.Base64.encode all))

let test_base64_invalid () =
  Alcotest.(check (option string)) "bad char" None (Vcrypto.Base64.decode "Zm9!");
  Alcotest.(check (option string)) "bad length" None (Vcrypto.Base64.decode "Zm9");
  Alcotest.(check (option string)) "pad in middle" None (Vcrypto.Base64.decode "Zg==Zm9v")

let prop_base64_roundtrip =
  QCheck.Test.make ~name:"base64 decode . encode = id" ~count:300 QCheck.string (fun s ->
      Vcrypto.Base64.decode (Vcrypto.Base64.encode s) = Some s)

(* ------------------------------------------------------------------ *)
(* EVP                                                                  *)
(* ------------------------------------------------------------------ *)

let test_evp_native_virtine_equal () =
  let key = "0123456789abcdef" in
  let iv = Bytes.make 16 '\001' in
  let data = Bytes.of_string "the quick brown fox jumps over the lazy dog" in
  let native = Vcrypto.Evp.create Vcrypto.Evp.Native ~key in
  let w = Wasp.Runtime.create () in
  let virt = Vcrypto.Evp.create (Vcrypto.Evp.Virtine w) ~key in
  let a = Vcrypto.Evp.encrypt native ~iv data in
  let b = Vcrypto.Evp.encrypt virt ~iv data in
  Alcotest.(check string) "identical ciphertext" (to_hex a) (to_hex b)

let test_evp_virtine_charges_cycles () =
  let w = Wasp.Runtime.create () in
  let virt = Vcrypto.Evp.create (Vcrypto.Evp.Virtine w) ~key:"0123456789abcdef" in
  let iv = Bytes.make 16 '\000' in
  let before = Cycles.Clock.now (Wasp.Runtime.clock w) in
  ignore (Vcrypto.Evp.encrypt virt ~iv (Bytes.create 1024));
  let spent = Int64.sub (Cycles.Clock.now (Wasp.Runtime.clock w)) before in
  Alcotest.(check bool) "charged" true (spent > 0L)

let test_evp_snapshot_amortizes () =
  let w = Wasp.Runtime.create () in
  let virt = Vcrypto.Evp.create (Vcrypto.Evp.Virtine w) ~key:"0123456789abcdef" in
  let iv = Bytes.make 16 '\000' in
  let clock = Wasp.Runtime.clock w in
  let timed f =
    let t0 = Cycles.Clock.now clock in
    f ();
    Int64.sub (Cycles.Clock.now clock) t0
  in
  let first = timed (fun () -> ignore (Vcrypto.Evp.encrypt virt ~iv (Bytes.create 256))) in
  let second = timed (fun () -> ignore (Vcrypto.Evp.encrypt virt ~iv (Bytes.create 256))) in
  Alcotest.(check bool)
    (Printf.sprintf "second (%Ld) cheaper than first (%Ld)" second first)
    true (second < first)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "vcrypto"
    [
      ( "aes",
        [
          Alcotest.test_case "FIPS-197 appendix B" `Quick test_aes_fips197;
          Alcotest.test_case "NIST ECB vectors" `Quick test_aes_nist_ecb;
          Alcotest.test_case "NIST CBC vector" `Quick test_aes_nist_cbc;
          Alcotest.test_case "decrypt inverts" `Quick test_aes_decrypt_inverts;
          Alcotest.test_case "bad key length" `Quick test_aes_bad_key_length;
          Alcotest.test_case "bad block length" `Quick test_aes_bad_block_length;
          Alcotest.test_case "malformed pkcs7" `Quick test_pkcs7_malformed;
        ] );
      qsuite "aes-properties" [ prop_ecb_roundtrip; prop_cbc_roundtrip; prop_pkcs7_roundtrip ];
      ( "base64",
        [
          Alcotest.test_case "RFC 4648 vectors" `Quick test_base64_rfc_vectors;
          Alcotest.test_case "binary roundtrip" `Quick test_base64_binary;
          Alcotest.test_case "invalid input" `Quick test_base64_invalid;
        ] );
      qsuite "base64-properties" [ prop_base64_roundtrip ];
      ( "evp",
        [
          Alcotest.test_case "native = virtine ciphertext" `Quick test_evp_native_virtine_equal;
          Alcotest.test_case "virtine charges cycles" `Quick test_evp_virtine_charges_cycles;
          Alcotest.test_case "snapshot amortizes" `Quick test_evp_snapshot_amortizes;
        ] );
    ]
