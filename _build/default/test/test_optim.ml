(* Tests for the optimizer: constant folding, dead-branch elimination,
   the peephole pass, and semantic preservation (differential). *)

module Ast = Vcc.Ast
module Optim = Vcc.Optim

let fold_expr_str s = Optim.fold_expr (Vcc.Parser.parse_expr_string s)

let check_folds_to s expected =
  match (fold_expr_str s).Ast.desc with
  | Ast.Int_lit v -> Alcotest.(check int64) s expected v
  | _ -> Alcotest.failf "%s did not fold to a literal" s

let check_not_literal s =
  match (fold_expr_str s).Ast.desc with
  | Ast.Int_lit _ -> Alcotest.failf "%s folded but should not" s
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Folding                                                              *)
(* ------------------------------------------------------------------ *)

let test_fold_arith () =
  check_folds_to "1 + 2 * 3" 7L;
  check_folds_to "(10 - 4) * (2 + 1)" 18L;
  check_folds_to "-(5)" (-5L);
  check_folds_to "~0" (-1L);
  check_folds_to "100 / 7" 14L;
  check_folds_to "100 % 7" 2L

let test_fold_comparisons_small () =
  check_folds_to "3 < 5" 1L;
  check_folds_to "5 == 5" 1L;
  check_folds_to "5 != 5" 0L;
  check_folds_to "1 && 2" 1L;
  check_folds_to "0 || 0" 0L

let test_fold_keeps_div_by_zero () =
  (* must not fold: the fault belongs to runtime semantics *)
  check_not_literal "1 / 0";
  check_not_literal "1 % 0"

let test_fold_respects_mode_safety () =
  (* 70000 does not fit in 16-bit; >> is not truncation-homomorphic, so
     it must not fold; << is, so it may *)
  check_not_literal "70000 >> 1";
  check_folds_to "70000 << 1" 140000L;
  check_folds_to "70000 + 1" 70001L

let test_fold_identities () =
  (* x + 0, x * 1 simplify away even with a variable operand *)
  (match (fold_expr_str "x + 0").Ast.desc with
  | Ast.Var "x" -> ()
  | _ -> Alcotest.fail "x + 0 should simplify to x");
  match (fold_expr_str "1 * x").Ast.desc with
  | Ast.Var "x" -> ()
  | _ -> Alcotest.fail "1 * x should simplify to x"

let test_fold_ternary () =
  check_folds_to "1 ? 42 : badly_typed" 42L;
  check_folds_to "0 ? whatever : 9" 9L

let test_fold_dead_branches () =
  let prog =
    Vcc.Parser.parse
      "int f() { if (0) { return 1; } if (1) { return 2; } while (0) { return 3; } return 4; }"
  in
  let folded = Optim.fold_program prog in
  (* the while(0) disappears entirely *)
  let f = List.hd folded.Ast.funcs in
  let rec has_while = function
    | [] -> false
    | Ast.While _ :: _ -> true
    | Ast.Block b :: rest | Ast.If (_, b, []) :: rest -> has_while b || has_while rest
    | _ :: rest -> has_while rest
  in
  Alcotest.(check bool) "while(0) removed" false (has_while f.Ast.body)

let test_fold_count_decreases () =
  let prog = Vcc.Parser.parse "int f() { return 1 + 2 + 3 + 4 + 5; }" in
  let before = Optim.fold_count prog in
  let after = Optim.fold_count (Optim.fold_program prog) in
  Alcotest.(check bool) (Printf.sprintf "%d -> %d literals" before after) true (after < before)

(* ------------------------------------------------------------------ *)
(* Peephole                                                             *)
(* ------------------------------------------------------------------ *)

let test_peephole_push_pop () =
  let items = [ Asm.Insn (Asm.SPush (Asm.OReg 0)); Asm.Insn (Asm.SPop 1) ] in
  match Optim.peephole items with
  | [ Asm.Insn (Asm.SMov (1, Asm.OReg 0)) ] -> ()
  | _ -> Alcotest.fail "push/pop should become mov"

let test_peephole_push_pop_same_reg () =
  let items = [ Asm.Insn (Asm.SPush (Asm.OReg 2)); Asm.Insn (Asm.SPop 2) ] in
  Alcotest.(check int) "eliminated" 0 (List.length (Optim.peephole items))

let test_peephole_self_move () =
  let items = [ Asm.Insn (Asm.SMov (3, Asm.OReg 3)); Asm.Insn Asm.SRet ] in
  Alcotest.(check int) "self-move dropped" 1 (List.length (Optim.peephole items))

let test_peephole_jump_to_next () =
  let items = [ Asm.Insn (Asm.SJmp (Asm.Lbl "l")); Asm.Label "l"; Asm.Insn Asm.SRet ] in
  match Optim.peephole items with
  | [ Asm.Label "l"; Asm.Insn Asm.SRet ] -> ()
  | _ -> Alcotest.fail "jump-to-next should vanish"

let test_peephole_dead_mov () =
  let items =
    [ Asm.Insn (Asm.SMov (0, Asm.OImm 1L)); Asm.Insn (Asm.SMov (0, Asm.OImm 2L)) ]
  in
  match Optim.peephole items with
  | [ Asm.Insn (Asm.SMov (0, Asm.OImm 2L)) ] -> ()
  | _ -> Alcotest.fail "dead mov should drop"

let test_peephole_keeps_dependent_mov () =
  (* mov r0, 1; mov r0, r0+?? -- here: mov r0, r0 is a self-move, but
     mov r0, imm; mov r1, r0 must keep both *)
  let items =
    [ Asm.Insn (Asm.SMov (0, Asm.OImm 1L)); Asm.Insn (Asm.SMov (1, Asm.OReg 0)) ]
  in
  Alcotest.(check int) "both kept" 2 (List.length (Optim.peephole items))

let test_peephole_label_barrier () =
  (* a label between push and pop must block the rewrite: something can
     jump to the label with a different stack *)
  let items =
    [ Asm.Insn (Asm.SPush (Asm.OReg 0)); Asm.Label "x"; Asm.Insn (Asm.SPop 1) ]
  in
  Alcotest.(check int) "not rewritten" 3 (List.length (Optim.peephole items))

(* ------------------------------------------------------------------ *)
(* Semantic preservation                                                *)
(* ------------------------------------------------------------------ *)

let sample_programs =
  [
    ("int f(int a) { return (2 + 3) * a + (10 / 2); }", [ 7L ]);
    ("int f(int a) { if (1 < 2) { return a * (4 - 4 + 1); } return 0 / 1; }", [ 42L ]);
    ("int f(int a) { int x = 3 * 3; while (0) { x = 100; } return x + a + 0; }", [ 5L ]);
    ( "int f(int a) { int s = 0; for (int i = 0; i < 2 + 3; i++) { s += i * 1; } return s + (a ? 1 : 0); }",
      [ 9L ] );
    ("int f(int a) { char buf[4]; buf[0] = 65 + 1; return buf[0] + a; }", [ 1L ]);
    ("int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }", [ 11L ]);
  ]

let test_optimized_matches_unoptimized () =
  List.iter
    (fun (src, args) ->
      let fname =
        if String.length src > 4 && String.sub src 0 7 = "int fib" then "fib" else "f"
      in
      let plain = Vcc.Compile.compile ~optimize:false src in
      let opt = Vcc.Compile.compile ~optimize:true src in
      let clock = Cycles.Clock.create () in
      let a = Vcc.Compile.invoke_native ~clock plain fname args () in
      let b = Vcc.Compile.invoke_native ~clock opt fname args () in
      Alcotest.(check int64) src a b)
    sample_programs

let test_optimized_faster_or_equal () =
  let src = "int f(int a) { return (1 + 2 + 3 + 4) * a + (100 / 5) + (7 < 9 ? 1 : 2); }" in
  let cycles optimize =
    let c = Vcc.Compile.compile ~optimize src in
    let clock = Cycles.Clock.create () in
    ignore (Vcc.Compile.invoke_native ~clock c "f" [ 3L ] ());
    Cycles.Clock.now clock
  in
  let plain = cycles false and opt = cycles true in
  Alcotest.(check bool) (Printf.sprintf "opt %Ld <= plain %Ld" opt plain) true (opt <= plain)

let test_optimized_virtine_still_correct () =
  let src = "virtine int f(int a) { return (6 * 7) + a * (2 - 1); }" in
  let c = Vcc.Compile.compile ~optimize:true src in
  let w = Wasp.Runtime.create () in
  let r = Vcc.Compile.invoke w c "f" [ 8L ] () in
  Alcotest.(check int64) "42 + 8" 50L r.Wasp.Runtime.return_value

let () =
  Alcotest.run "optim"
    [
      ( "folding",
        [
          Alcotest.test_case "arithmetic" `Quick test_fold_arith;
          Alcotest.test_case "comparisons" `Quick test_fold_comparisons_small;
          Alcotest.test_case "div by zero kept" `Quick test_fold_keeps_div_by_zero;
          Alcotest.test_case "mode safety" `Quick test_fold_respects_mode_safety;
          Alcotest.test_case "identities" `Quick test_fold_identities;
          Alcotest.test_case "ternary" `Quick test_fold_ternary;
          Alcotest.test_case "dead branches" `Quick test_fold_dead_branches;
          Alcotest.test_case "literal count shrinks" `Quick test_fold_count_decreases;
        ] );
      ( "peephole",
        [
          Alcotest.test_case "push/pop to mov" `Quick test_peephole_push_pop;
          Alcotest.test_case "push/pop same reg" `Quick test_peephole_push_pop_same_reg;
          Alcotest.test_case "self move" `Quick test_peephole_self_move;
          Alcotest.test_case "jump to next" `Quick test_peephole_jump_to_next;
          Alcotest.test_case "dead mov" `Quick test_peephole_dead_mov;
          Alcotest.test_case "dependent mov kept" `Quick test_peephole_keeps_dependent_mov;
          Alcotest.test_case "label barrier" `Quick test_peephole_label_barrier;
        ] );
      ( "preservation",
        [
          Alcotest.test_case "matches unoptimized" `Quick test_optimized_matches_unoptimized;
          Alcotest.test_case "faster or equal" `Quick test_optimized_faster_or_equal;
          Alcotest.test_case "virtine still correct" `Quick test_optimized_virtine_still_correct;
        ] );
    ]
