(* Tests for the vcc compiler: lexer, parser, sema, call-graph cut, and
   end-to-end execution of compiled code both natively and in virtines. *)

module R = Wasp.Runtime
module Ast = Vcc.Ast
module Lexer = Vcc.Lexer
module Parser = Vcc.Parser

let compile = Vcc.Compile.compile

(* run a function natively (bare CPU) and return its value *)
let native ?(args = []) src fname =
  let c = compile src in
  Vcc.Compile.invoke_native ~clock:(Cycles.Clock.create ()) c fname args ()

(* run a virtine-annotated function under Wasp *)
let virtine ?(args = []) ?w src fname =
  let w = match w with Some w -> w | None -> R.create () in
  let c = compile src in
  Vcc.Compile.invoke w c fname args ()

let check_i64 = Alcotest.(check int64)

(* ------------------------------------------------------------------ *)
(* Lexer                                                                *)
(* ------------------------------------------------------------------ *)

let test_lex_tokens () =
  let toks = List.map fst (Lexer.tokenize "int x = 0x1F + 'a'; // comment") in
  Alcotest.(check bool) "shape" true
    (toks
    = [
        Lexer.KW_INT;
        Lexer.IDENT "x";
        Lexer.ASSIGN;
        Lexer.INT_LIT 31L;
        Lexer.PLUS;
        Lexer.CHAR_LIT 'a';
        Lexer.SEMI;
        Lexer.EOF;
      ])

let test_lex_virtine_keywords () =
  let toks = List.map fst (Lexer.tokenize "virtine virtine_permissive virtine_config") in
  Alcotest.(check bool) "keywords" true
    (toks = [ Lexer.KW_VIRTINE; Lexer.KW_VIRTINE_PERMISSIVE; Lexer.KW_VIRTINE_CONFIG; Lexer.EOF ])

let test_lex_block_comment () =
  let toks = List.map fst (Lexer.tokenize "a /* long\ncomment */ b") in
  Alcotest.(check int) "two idents" 3 (List.length toks)

let test_lex_string_escapes () =
  match List.map fst (Lexer.tokenize {|"a\n\t\"b"|}) with
  | [ Lexer.STR_LIT s; Lexer.EOF ] -> Alcotest.(check string) "escapes" "a\n\t\"b" s
  | _ -> Alcotest.fail "expected string literal"

let test_lex_error_position () =
  match Lexer.tokenize "int x;\n  @" with
  | exception Lexer.Lex_error { loc; _ } ->
      Alcotest.(check int) "line" 2 loc.Ast.line;
      Alcotest.(check int) "col" 3 loc.Ast.col
  | _ -> Alcotest.fail "expected lex error"

(* ------------------------------------------------------------------ *)
(* Parser                                                               *)
(* ------------------------------------------------------------------ *)

let test_parse_function_shapes () =
  let p = Parser.parse "int f(int a, char *b) { return a; } void g() { }" in
  Alcotest.(check int) "two functions" 2 (List.length p.Ast.funcs);
  let f = List.hd p.Ast.funcs in
  Alcotest.(check int) "two params" 2 (List.length f.Ast.params);
  Alcotest.(check bool) "not virtine" true (f.Ast.annot = Ast.Not_virtine)

let test_parse_annotations () =
  let p =
    Parser.parse
      "virtine int a() { return 0; } virtine_permissive int b() { return 0; } \
       virtine_config(0x6) int c() { return 0; }"
  in
  let annots = List.map (fun (f : Ast.func) -> f.Ast.annot) p.Ast.funcs in
  Alcotest.(check bool) "annotations" true
    (annots = [ Ast.Virtine; Ast.Virtine_permissive; Ast.Virtine_config 6L ])

let test_parse_globals () =
  let p =
    Parser.parse
      "int counter = 42; char msg[8] = \"hi\"; int table[3] = {1, 2, 3}; int bss;"
  in
  Alcotest.(check int) "four globals" 4 (List.length p.Ast.globals)

let test_parse_precedence () =
  (* 1 + 2 * 3 == 7 must parse multiplication tighter *)
  let e = Parser.parse_expr_string "1 + 2 * 3 == 7" in
  match e.Ast.desc with
  | Ast.Binary (Ast.Eq, { desc = Ast.Binary (Ast.Add, _, _); _ }, _) -> ()
  | _ -> Alcotest.fail "precedence wrong"

let test_parse_error_message () =
  match Parser.parse "int f( { }" with
  | exception Parser.Parse_error { msg; _ } ->
      Alcotest.(check bool) "mentions expectation" true (String.length msg > 0)
  | _ -> Alcotest.fail "expected parse error"

let test_parse_dangling_else () =
  ignore (Parser.parse "int f(int x) { if (x) if (x) return 1; else return 2; return 3; }")

(* ------------------------------------------------------------------ *)
(* Sema                                                                 *)
(* ------------------------------------------------------------------ *)

let expect_compile_error src =
  match compile src with
  | exception Vcc.Compile.Compile_error _ -> ()
  | _ -> Alcotest.failf "expected compile error for %s" src

let test_sema_unknown_variable () = expect_compile_error "int f() { return y; }"

let test_sema_unknown_function () = expect_compile_error "int f() { return g(); }"

let test_sema_arity () = expect_compile_error "int g(int a) { return a; } int f() { return g(); }"

let test_sema_lvalue () = expect_compile_error "int f() { 3 = 4; return 0; }"

let test_sema_break_outside_loop () = expect_compile_error "int f() { break; return 0; }"

let test_sema_duplicate_function () =
  expect_compile_error "int f() { return 0; } int f() { return 1; }"

let test_sema_duplicate_local () = expect_compile_error "int f() { int x; int x; return 0; }"

let test_sema_virtine_pointer_param () =
  expect_compile_error "virtine int f(char *p) { return 0; }"

let test_sema_deref_int () = expect_compile_error "int f(int x) { return *x; }"

let test_sema_shadowing_builtin () = expect_compile_error "int strlen(int x) { return x; }"

let test_sema_scopes_allow_shadowing () =
  (* a block-scoped redeclaration is legal *)
  let v = native "int f() { int x = 1; { int x = 2; } return x; }" "f" in
  check_i64 "outer x" 1L v

(* ------------------------------------------------------------------ *)
(* Call graph                                                           *)
(* ------------------------------------------------------------------ *)

let cg_src =
  {|
int g_used = 5;
int g_unused = 9;
int helper(int x) { return x + g_used; }
int unrelated() { return g_unused; }
virtine int root(int x) { return helper(x); }
|}

let test_callgraph_reachable () =
  let prog = Parser.parse cg_src in
  let r = Vcc.Callgraph.from prog ~root:"root" in
  Alcotest.(check (list string)) "funcs" [ "root"; "helper" ] r.Vcc.Callgraph.funcs;
  Alcotest.(check (list string)) "globals" [ "g_used" ] r.Vcc.Callgraph.globals

let test_callgraph_builtins () =
  let prog = Parser.parse "virtine int f() { char buf[8]; return strlen(buf); }" in
  let r = Vcc.Callgraph.from prog ~root:"f" in
  Alcotest.(check (list string)) "builtins" [ "strlen" ] r.Vcc.Callgraph.builtins

let test_callgraph_recursive () =
  let prog = Parser.parse "virtine int f(int n) { return n < 2 ? n : f(n-1) + f(n-2); }" in
  let r = Vcc.Callgraph.from prog ~root:"f" in
  Alcotest.(check (list string)) "self only" [ "f" ] r.Vcc.Callgraph.funcs

let test_virtine_roots () =
  let prog = Parser.parse cg_src in
  let roots = Vcc.Callgraph.virtine_roots prog in
  Alcotest.(check int) "one root" 1 (List.length roots)

(* ------------------------------------------------------------------ *)
(* End-to-end: native execution semantics                               *)
(* ------------------------------------------------------------------ *)

let test_exec_return_constant () = check_i64 "42" 42L (native "int f() { return 42; }" "f")

let test_exec_arith () =
  check_i64 "expr" 17L (native "int f() { return (2 + 3) * 4 - 6 / 2; }" "f")

let test_exec_params () =
  check_i64 "a-b" 7L (native ~args:[ 10L; 3L ] "int f(int a, int b) { return a - b; }" "f")

let test_exec_six_params () =
  check_i64 "sum" 21L
    (native
       ~args:[ 1L; 2L; 3L; 4L; 5L; 6L ]
       "int f(int a, int b, int c, int d, int e, int g) { return a+b+c+d+e+g; }" "f")

let test_exec_locals_and_assign () =
  check_i64 "locals" 30L
    (native "int f() { int x = 10; int y; y = x * 2; x = x + y; return x; }" "f")

let test_exec_compound_assign () =
  check_i64 "compound" 14L (native "int f() { int x = 3; x += 4; x *= 2; return x; }" "f")

let test_exec_increment () =
  check_i64 "postincrement value" 6L
    (native "int f() { int x = 4; int y = x++; return x + (y == 4); }" "f");
  check_i64 "preincrement" 10L (native "int f() { int x = 4; return ++x * 2; }" "f")

let test_exec_if_else () =
  let src = "int f(int x) { if (x > 10) return 1; else if (x > 5) return 2; return 3; }" in
  check_i64 "big" 1L (native ~args:[ 11L ] src "f");
  check_i64 "mid" 2L (native ~args:[ 7L ] src "f");
  check_i64 "small" 3L (native ~args:[ 1L ] src "f")

let test_exec_while () =
  check_i64 "sum 1..100" 5050L
    (native "int f() { int s = 0; int i = 1; while (i <= 100) { s += i; i++; } return s; }"
       "f")

let test_exec_for_break_continue () =
  (* sum of odd numbers below 10, stopping at 7 *)
  check_i64 "for/break/continue" 16L
    (native
       {|int f() {
           int s = 0;
           for (int i = 0; i < 100; i++) {
             if (i == 8) break;
             if (i % 2 == 0) continue;
             s += i;
           }
           return s;
         }|}
       "f")

let test_exec_recursion_fib () =
  check_i64 "fib(15)" 610L
    (native ~args:[ 15L ]
       "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }" "fib")

let test_exec_mutual_recursion () =
  (* no prototypes needed: name resolution is whole-unit *)
  check_i64 "is_even(10)" 1L
    (native ~args:[ 10L ]
       {|int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
         int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }|}
       "is_even")

let test_exec_forward_decl_unsupported_gracefully () =
  check_i64 "helper" 12L
    (native ~args:[ 4L ] "int h(int x) { return x * 2; } int f(int x) { return h(x) + x; }"
       "f")

let test_exec_arrays () =
  check_i64 "array sum" 60L
    (native
       {|int f() {
           int a[4];
           a[0] = 10; a[1] = 20; a[2] = 30;
           a[3] = a[0] + a[1];
           return a[1] + a[2] + (a[3] - a[0] - a[1]) + 10;
         }|}
       "f")

let test_exec_char_arrays () =
  check_i64 "char ops" (Int64.of_int (Char.code 'h'))
    (native
       {|int f() {
           char buf[16];
           strcpy(buf, "hello");
           return buf[0];
         }|}
       "f")

let test_exec_pointers () =
  check_i64 "pointer write" 99L
    (native "int f() { int x = 1; int *p = &x; *p = 99; return x; }" "f")

let test_exec_pointer_arithmetic () =
  check_i64 "scaled" 30L
    (native
       {|int f() {
           int a[3];
           a[0] = 10; a[1] = 20; a[2] = 30;
           int *p = a;
           p = p + 2;
           return *p;
         }|}
       "f")

let test_exec_char_pointer_iteration () =
  check_i64 "strlen by hand" 5L
    (native
       {|int f() {
           char *s = "hello";
           int n = 0;
           while (*s) { n++; s = s + 1; }
           return n;
         }|}
       "f")

let test_exec_globals () =
  check_i64 "global rmw" 15L
    (native "int g = 5; int f() { g = g + 10; return g; }" "f")

let test_exec_global_array () =
  check_i64 "table lookup" 13L
    (native ~args:[ 2L ] "int t[4] = {11, 12, 13, 14}; int f(int i) { return t[i]; }" "f")

let test_exec_global_string () =
  check_i64 "global string" (Int64.of_int (Char.code 'v'))
    (native "char name[8] = \"virtine\"; int f() { return name[0]; }" "f")

let test_exec_ternary () =
  check_i64 "ternary" 7L (native ~args:[ 1L ] "int f(int x) { return x ? 7 : 9; }" "f")

let test_exec_logical_short_circuit () =
  (* g() would trap via division by zero if evaluated *)
  check_i64 "and shortcircuit" 0L
    (native "int g() { return 1 / 0; } int f() { return 0 && g(); }" "f");
  check_i64 "or shortcircuit" 1L
    (native "int g() { return 1 / 0; } int f() { return 1 || g(); }" "f")

let test_exec_shifts_and_masks () =
  check_i64 "bit ops" 0xF0L
    (native "int f() { return ((0xFF << 4) >> 4) & 0xF0 | (0 ^ 0); }" "f")

let test_exec_negative_numbers () =
  check_i64 "negatives" (-6L) (native "int f() { int x = -2; return x * 3; }" "f")

let test_exec_libc_memset_memcpy () =
  check_i64 "memset+memcpy" 7L
    (native
       {|int f() {
           char a[8];
           char b[8];
           memset(a, 7, 8);
           memcpy(b, a, 8);
           return b[5];
         }|}
       "f")

let test_exec_libc_strcmp () =
  check_i64 "strcmp equal" 0L (native "int f() { return strcmp(\"abc\", \"abc\"); }" "f");
  let v = native "int f() { return strcmp(\"abd\", \"abc\"); }" "f" in
  Alcotest.(check bool) "strcmp order" true (v > 0L)

let test_exec_malloc () =
  check_i64 "malloc" 55L
    (native
       {|int f() {
           int *p = (int*) malloc(16);
           int *q = (int*) malloc(16);
           p[0] = 22; q[0] = 33;
           return p[0] + q[0];
         }|}
       "f")

let test_exec_new_libc_routines () =
  check_i64 "atoi" 1234L (native {|int f() { return atoi("1234"); }|} "f");
  check_i64 "atoi negative" (-56L) (native {|int f() { return atoi("-56"); }|} "f");
  check_i64 "atoi stops at non-digit" 42L (native {|int f() { return atoi("42abc"); }|} "f");
  check_i64 "atoi itoa roundtrip" (-9876L)
    (native {|int f() { char buf[24]; itoa(-9876, buf); return atoi(buf); }|} "f");
  check_i64 "memcmp equal" 0L
    (native {|int f() { return memcmp("abc", "abc", 3); }|} "f");
  (let v = native {|int f() { return memcmp("abd", "abc", 3); }|} "f" in
   Alcotest.(check bool) "memcmp order" true (v > 0L));
  check_i64 "strncmp bounded" 0L
    (native {|int f() { return strncmp("abcdef", "abcxyz", 3); }|} "f");
  (let v = native {|int f() { return strncmp("abcdef", "abcxyz", 4); }|} "f" in
   Alcotest.(check bool) "strncmp differs at 4" true (v < 0L));
  check_i64 "abs negative" 7L (native "int f() { return abs(0 - 7); }" "f");
  check_i64 "abs positive" 7L (native "int f() { return abs(7); }" "f")

let test_exec_do_while () =
  check_i64 "runs at least once" 1L
    (native "int f() { int n = 0; do { n = n + 1; } while (0); return n; }" "f");
  check_i64 "loops" 10L
    (native "int f() { int n = 0; do { n = n + 1; } while (n < 10); return n; }" "f");
  check_i64 "break in do-while" 3L
    (native
       "int f() { int n = 0; do { n = n + 1; if (n == 3) break; } while (1); return n; }" "f");
  check_i64 "continue re-tests condition" 4L
    (native
       {|int f() {
           int n = 0;
           int guard = 0;
           do {
             guard = guard + 1;
             if (guard > 100) break;
             continue;
           } while (++n < 4);
           return n;
         }|}
       "f")

let test_exec_sizeof () =
  check_i64 "sizeof int" 8L (native "int f() { return sizeof(int); }" "f");
  check_i64 "sizeof char" 1L (native "int f() { return sizeof(char); }" "f");
  check_i64 "sizeof pointer" 8L (native "int f() { return sizeof(char*); }" "f");
  check_i64 "sizeof array" 32L (native "int f() { return sizeof(int[4]); }" "f");
  check_i64 "sizeof in arithmetic" 24L
    (native "int f() { return sizeof(int) * 3; }" "f")

let test_exec_itoa () =
  check_i64 "itoa length" 4L
    (native
       {|int f() {
           char buf[16];
           int n = itoa(-123, buf);
           if (buf[0] != '-') return 100;
           if (buf[1] != '1') return 101;
           if (buf[3] != '3') return 102;
           return n;
         }|}
       "f")

(* ------------------------------------------------------------------ *)
(* Minimal images (selective libc linking)                              *)
(* ------------------------------------------------------------------ *)

let image_symbols src fname =
  let c = compile src in
  match Vcc.Compile.find_virtine c fname with
  | Some vi -> List.map fst vi.Vcc.Compile.asm.Asm.symbols
  | None -> Alcotest.fail "no virtine"

let test_minimal_image_excludes_unused_libc () =
  (* §2: "a virtine image contains only the software that a function
     needs" -- fib uses no libc, so no __vl_ routine is linked *)
  let syms =
    image_symbols "virtine int fib(int n) { if (n < 2) return n; return fib(n-1)+fib(n-2); }"
      "fib"
  in
  Alcotest.(check bool) "no library routines" true
    (not (List.exists (fun s -> String.length s > 5 && String.sub s 0 5 = "__vl_") syms))

let test_minimal_image_links_dependencies () =
  (* puts depends on strlen; both must be present, nothing else *)
  let syms = image_symbols {|virtine int f() { puts("hi"); return 0; }|} "f" in
  let has name = List.mem name syms in
  Alcotest.(check bool) "puts linked" true (has "__vl_puts");
  Alcotest.(check bool) "strlen pulled in" true (has "__vl_strlen");
  Alcotest.(check bool) "memcpy not linked" false (has "__vl_memcpy");
  Alcotest.(check bool) "itoa not linked" false (has "__vl_itoa")

let test_minimal_image_smaller () =
  let size src fname =
    let c = compile src in
    match Vcc.Compile.find_virtine c fname with
    | Some vi -> Wasp.Image.size vi.Vcc.Compile.image
    | None -> Alcotest.fail "no virtine"
  in
  let bare = size "virtine int f(int x) { return x; }" "f" in
  let with_libc =
    size
      {|virtine int f(int x) {
          char buf[32];
          itoa(x, buf);
          char dst[32];
          strcpy(dst, buf);
          memset(buf, 0, 32);
          return strlen(dst);
        }|}
      "f"
  in
  Alcotest.(check bool)
    (Printf.sprintf "bare %dB < libc-using %dB" bare with_libc)
    true (bare < with_libc)

(* ------------------------------------------------------------------ *)
(* End-to-end: virtine execution                                        *)
(* ------------------------------------------------------------------ *)

let fib_src = "virtine int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }"

let test_virtine_fib () =
  let r = virtine ~args:[ 10L ] fib_src "fib" in
  check_i64 "fib(10) in virtine" 55L r.R.return_value

let test_virtine_matches_native () =
  let c = compile fib_src in
  let w = R.create () in
  let clock = Cycles.Clock.create () in
  for n = 0 to 12 do
    let nat = Vcc.Compile.invoke_native ~clock c "fib" [ Int64.of_int n ] () in
    let vr = Vcc.Compile.invoke w c "fib" [ Int64.of_int n ] () in
    check_i64 (Printf.sprintf "fib(%d)" n) nat vr.R.return_value
  done

let test_virtine_snapshot_speedup () =
  let c = compile fib_src in
  let w = R.create () in
  let r1 = Vcc.Compile.invoke w c "fib" [ 1L ] () in
  let r2 = Vcc.Compile.invoke w c "fib" [ 1L ] () in
  Alcotest.(check bool) "second from snapshot" true r2.R.from_snapshot;
  Alcotest.(check bool)
    (Printf.sprintf "snapshot faster: %Ld < %Ld" r2.R.cycles r1.R.cycles)
    true (r2.R.cycles < r1.R.cycles)

let test_virtine_no_snapshot_compile () =
  let c = compile ~snapshot:false fib_src in
  let w = R.create () in
  let r1 = Vcc.Compile.invoke w c "fib" [ 1L ] () in
  let r2 = Vcc.Compile.invoke w c "fib" [ 1L ] () in
  Alcotest.(check bool) "never snapshots" true
    ((not r1.R.from_snapshot) && not r2.R.from_snapshot)

let test_virtine_global_copies_are_distinct () =
  (* §5.3: "Concurrent modifications will occur on distinct copies of the
     variable": each invocation sees the pristine global. *)
  let src = "int g = 100; virtine int bump() { g = g + 1; return g; }" in
  let c = compile src in
  let w = R.create () in
  let r1 = Vcc.Compile.invoke w c "bump" [] () in
  let r2 = Vcc.Compile.invoke w c "bump" [] () in
  check_i64 "first sees 101" 101L r1.R.return_value;
  check_i64 "second also sees 101" 101L r2.R.return_value

let test_virtine_default_deny_io () =
  (* a virtine-annotated function trying to open a host file is refused *)
  let src =
    {|virtine int spy() {
        int fd = open("/etc/passwd");
        return fd;
      }|}
  in
  let w = R.create () in
  Wasp.Hostenv.add_file (R.env w) ~path:"/etc/passwd" "root:x:0:0";
  let r = virtine ~w src "spy" in
  check_i64 "denied" Wasp.Hc.err_denied r.R.return_value

let test_virtine_permissive_io () =
  let src =
    {|virtine_permissive int peek() {
        int fd = open("/data/file");
        if (fd < 0) return -100;
        char buf[8];
        int n = read(fd, buf, 4);
        close(fd);
        return buf[0] + n;
      }|}
  in
  let w = R.create () in
  Wasp.Hostenv.add_file (R.env w) ~path:"/data/file" "ABCD";
  let r = virtine ~w src "peek" in
  check_i64 "read through hypercalls" (Int64.of_int (Char.code 'A' + 4)) r.R.return_value

let test_virtine_config_mask () =
  (* allow only stat; open must be denied *)
  let mask = Wasp.Policy.mask_of_list [ Wasp.Hc.stat ] in
  let src =
    Printf.sprintf
      {|virtine_config(%Ld) int probe() {
          int size = stat("/data/file");
          int fd = open("/data/file");
          return size * 1000 + (fd == -1);
        }|}
      mask
  in
  let w = R.create () in
  Wasp.Hostenv.add_file (R.env w) ~path:"/data/file" "12345";
  let r = virtine ~w src "probe" in
  check_i64 "stat ok, open denied" 5001L r.R.return_value

let test_virtine_nested_annotation_no_nest () =
  (* a virtine calling another virtine-annotated function: no nested
     virtine is created; it is a plain call in the same image (§5.3) *)
  let src =
    {|virtine int inner(int x) { return x * 2; }
      virtine int outer(int x) { return inner(x) + 1; }|}
  in
  let w = R.create () in
  let c = compile src in
  let r = Vcc.Compile.invoke w c "outer" [ 5L ] () in
  check_i64 "plain call" 11L r.R.return_value;
  (* only one VM was used for the outer invocation *)
  Alcotest.(check int) "one shell created" 1 (R.pool_stats w).Wasp.Pool.created

let test_virtine_isolation_fault_contained () =
  let src = {|virtine int wild() { int *p = (int*) 40000000; return *p; }|} in
  let r = virtine src "wild" in
  match r.R.outcome with
  | R.Faulted _ -> ()
  | _ -> Alcotest.fail "expected contained fault"

let test_virtine_real_mode () =
  let c = compile ~mode:Vm.Modes.Real fib_src in
  let w = R.create () in
  let r = Vcc.Compile.invoke w c "fib" [ 12L ] () in
  check_i64 "fib(12) in real mode" 144L r.R.return_value

let test_virtine_protected_mode () =
  let c = compile ~mode:Vm.Modes.Protected fib_src in
  let w = R.create () in
  let r = Vcc.Compile.invoke w c "fib" [ 12L ] () in
  check_i64 "fib(12) in protected mode" 144L r.R.return_value

let test_virtine_mode_boot_cost_ordering () =
  (* Figure 3: cheaper modes boot faster (no snapshot, pool off to expose
     the boot path each time) *)
  let cost mode =
    let c = compile ~snapshot:false ~mode fib_src in
    let w = R.create ~pool:false () in
    let r = Vcc.Compile.invoke w c "fib" [ 5L ] () in
    r.R.cycles
  in
  let real = cost Vm.Modes.Real in
  let prot = cost Vm.Modes.Protected in
  let long = cost Vm.Modes.Long in
  Alcotest.(check bool)
    (Printf.sprintf "real %Ld < protected %Ld" real prot)
    true (real < prot);
  Alcotest.(check bool)
    (Printf.sprintf "protected %Ld < long %Ld" prot long)
    true (prot < long)

let test_invoke_non_virtine_raises () =
  let c = compile "int f() { return 1; }" in
  let w = R.create () in
  match Vcc.Compile.invoke w c "f" [] () with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found"

let () =
  Alcotest.run "vcc"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lex_tokens;
          Alcotest.test_case "virtine keywords" `Quick test_lex_virtine_keywords;
          Alcotest.test_case "block comments" `Quick test_lex_block_comment;
          Alcotest.test_case "string escapes" `Quick test_lex_string_escapes;
          Alcotest.test_case "error position" `Quick test_lex_error_position;
        ] );
      ( "parser",
        [
          Alcotest.test_case "function shapes" `Quick test_parse_function_shapes;
          Alcotest.test_case "annotations" `Quick test_parse_annotations;
          Alcotest.test_case "globals" `Quick test_parse_globals;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "error message" `Quick test_parse_error_message;
          Alcotest.test_case "dangling else" `Quick test_parse_dangling_else;
        ] );
      ( "sema",
        [
          Alcotest.test_case "unknown variable" `Quick test_sema_unknown_variable;
          Alcotest.test_case "unknown function" `Quick test_sema_unknown_function;
          Alcotest.test_case "arity" `Quick test_sema_arity;
          Alcotest.test_case "lvalue" `Quick test_sema_lvalue;
          Alcotest.test_case "break outside loop" `Quick test_sema_break_outside_loop;
          Alcotest.test_case "duplicate function" `Quick test_sema_duplicate_function;
          Alcotest.test_case "duplicate local" `Quick test_sema_duplicate_local;
          Alcotest.test_case "virtine pointer param" `Quick test_sema_virtine_pointer_param;
          Alcotest.test_case "deref int" `Quick test_sema_deref_int;
          Alcotest.test_case "builtin shadowing" `Quick test_sema_shadowing_builtin;
          Alcotest.test_case "block shadowing ok" `Quick test_sema_scopes_allow_shadowing;
        ] );
      ( "callgraph",
        [
          Alcotest.test_case "reachable cut" `Quick test_callgraph_reachable;
          Alcotest.test_case "builtins" `Quick test_callgraph_builtins;
          Alcotest.test_case "recursion" `Quick test_callgraph_recursive;
          Alcotest.test_case "virtine roots" `Quick test_virtine_roots;
        ] );
      ( "exec-native",
        [
          Alcotest.test_case "return constant" `Quick test_exec_return_constant;
          Alcotest.test_case "arithmetic" `Quick test_exec_arith;
          Alcotest.test_case "params" `Quick test_exec_params;
          Alcotest.test_case "six params" `Quick test_exec_six_params;
          Alcotest.test_case "locals/assign" `Quick test_exec_locals_and_assign;
          Alcotest.test_case "compound assign" `Quick test_exec_compound_assign;
          Alcotest.test_case "increment" `Quick test_exec_increment;
          Alcotest.test_case "if/else" `Quick test_exec_if_else;
          Alcotest.test_case "while" `Quick test_exec_while;
          Alcotest.test_case "for/break/continue" `Quick test_exec_for_break_continue;
          Alcotest.test_case "recursion (fib)" `Quick test_exec_recursion_fib;
          Alcotest.test_case "mutual recursion" `Quick test_exec_mutual_recursion;
          Alcotest.test_case "two functions" `Quick test_exec_forward_decl_unsupported_gracefully;
          Alcotest.test_case "arrays" `Quick test_exec_arrays;
          Alcotest.test_case "char arrays" `Quick test_exec_char_arrays;
          Alcotest.test_case "pointers" `Quick test_exec_pointers;
          Alcotest.test_case "pointer arithmetic" `Quick test_exec_pointer_arithmetic;
          Alcotest.test_case "char pointer iteration" `Quick test_exec_char_pointer_iteration;
          Alcotest.test_case "globals" `Quick test_exec_globals;
          Alcotest.test_case "global arrays" `Quick test_exec_global_array;
          Alcotest.test_case "global strings" `Quick test_exec_global_string;
          Alcotest.test_case "ternary" `Quick test_exec_ternary;
          Alcotest.test_case "short circuit" `Quick test_exec_logical_short_circuit;
          Alcotest.test_case "shifts and masks" `Quick test_exec_shifts_and_masks;
          Alcotest.test_case "negative numbers" `Quick test_exec_negative_numbers;
          Alcotest.test_case "memset/memcpy" `Quick test_exec_libc_memset_memcpy;
          Alcotest.test_case "strcmp" `Quick test_exec_libc_strcmp;
          Alcotest.test_case "malloc" `Quick test_exec_malloc;
          Alcotest.test_case "new libc routines" `Quick test_exec_new_libc_routines;
          Alcotest.test_case "do-while" `Quick test_exec_do_while;
          Alcotest.test_case "sizeof" `Quick test_exec_sizeof;
          Alcotest.test_case "itoa" `Quick test_exec_itoa;
        ] );
      ( "minimal-images",
        [
          Alcotest.test_case "no unused libc" `Quick test_minimal_image_excludes_unused_libc;
          Alcotest.test_case "dependency closure" `Quick test_minimal_image_links_dependencies;
          Alcotest.test_case "smaller images" `Quick test_minimal_image_smaller;
        ] );
      ( "exec-virtine",
        [
          Alcotest.test_case "fib" `Quick test_virtine_fib;
          Alcotest.test_case "matches native" `Quick test_virtine_matches_native;
          Alcotest.test_case "snapshot speedup" `Quick test_virtine_snapshot_speedup;
          Alcotest.test_case "snapshot opt-out" `Quick test_virtine_no_snapshot_compile;
          Alcotest.test_case "global copy semantics" `Quick test_virtine_global_copies_are_distinct;
          Alcotest.test_case "default deny io" `Quick test_virtine_default_deny_io;
          Alcotest.test_case "permissive io" `Quick test_virtine_permissive_io;
          Alcotest.test_case "config mask" `Quick test_virtine_config_mask;
          Alcotest.test_case "no nested virtines" `Quick test_virtine_nested_annotation_no_nest;
          Alcotest.test_case "fault contained" `Quick test_virtine_isolation_fault_contained;
          Alcotest.test_case "real mode" `Quick test_virtine_real_mode;
          Alcotest.test_case "protected mode" `Quick test_virtine_protected_mode;
          Alcotest.test_case "mode cost ordering" `Quick test_virtine_mode_boot_cost_ordering;
          Alcotest.test_case "non-virtine invoke" `Quick test_invoke_non_virtine_raises;
        ] );
    ]
