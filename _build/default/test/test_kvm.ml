(* Tests for the simulated KVM host interface. *)

let hlt = Encoding.encode_program [ Instr.Hlt ]

let setup ?(mode = Vm.Modes.Long) ?(size = 64 * 1024) () =
  let sys = Kvmsim.Kvm.open_dev ~seed:9 () in
  let vm = Kvmsim.Kvm.create_vm sys in
  let mem = Kvmsim.Kvm.set_user_memory_region vm ~size in
  let vcpu = Kvmsim.Kvm.create_vcpu vm ~mode in
  (sys, vm, mem, vcpu)

let test_lifecycle_costs_charged () =
  let sys = Kvmsim.Kvm.open_dev ~seed:9 () in
  let t0 = Cycles.Clock.now (Kvmsim.Kvm.clock sys) in
  let vm = Kvmsim.Kvm.create_vm sys in
  let t1 = Cycles.Clock.now (Kvmsim.Kvm.clock sys) in
  Alcotest.(check bool) "create_vm expensive" true
    (Int64.to_int (Int64.sub t1 t0) > 100_000);
  let _mem = Kvmsim.Kvm.set_user_memory_region vm ~size:4096 in
  let _vcpu = Kvmsim.Kvm.create_vcpu vm ~mode:Vm.Modes.Real in
  Alcotest.(check bool) "further charges" true
    (Cycles.Clock.now (Kvmsim.Kvm.clock sys) > t1)

let test_run_hlt () =
  let _, _, mem, vcpu = setup () in
  Vm.Memory.write_bytes mem ~off:0 hlt;
  match Kvmsim.Kvm.run vcpu with
  | Kvmsim.Kvm.Hlt -> ()
  | _ -> Alcotest.fail "expected hlt"

let test_run_charges_round_trip () =
  let sys, _, mem, vcpu = setup () in
  Vm.Memory.write_bytes mem ~off:0 hlt;
  let t0 = Cycles.Clock.now (Kvmsim.Kvm.clock sys) in
  ignore (Kvmsim.Kvm.run vcpu);
  let spent = Int64.to_int (Int64.sub (Cycles.Clock.now (Kvmsim.Kvm.clock sys)) t0) in
  (* ioctl + checks + entry + exit ~= 9.5K *)
  Alcotest.(check bool) (Printf.sprintf "round trip %d in [6K,16K]" spent) true
    (spent > 6_000 && spent < 16_000)

let test_io_exit_and_resume () =
  let _, _, mem, vcpu = setup () in
  Vm.Memory.write_bytes mem ~off:0
    (Encoding.encode_program [ Instr.Mov (0, Instr.Imm 5L); Instr.Out (1, Instr.Reg 0); Instr.Hlt ]);
  (match Kvmsim.Kvm.run vcpu with
  | Kvmsim.Kvm.Io_out { port = 1; value = 5L } -> ()
  | _ -> Alcotest.fail "expected io exit");
  match Kvmsim.Kvm.run vcpu with
  | Kvmsim.Kvm.Hlt -> ()
  | _ -> Alcotest.fail "expected hlt after resume"

let test_fault_exit () =
  let _, _, mem, vcpu = setup ~size:4096 () in
  Vm.Memory.write_bytes mem ~off:0
    (Encoding.encode_program
       [ Instr.Mov (1, Instr.Imm 0x100000L); Instr.Load (Instr.W64, 0, 1, 0); Instr.Hlt ]);
  match Kvmsim.Kvm.run vcpu with
  | Kvmsim.Kvm.Fault _ -> ()
  | _ -> Alcotest.fail "expected fault exit"

let test_stats_counters () =
  let sys, _, mem, vcpu = setup () in
  Vm.Memory.write_bytes mem ~off:0
    (Encoding.encode_program [ Instr.Out (1, Instr.Imm 1L); Instr.Hlt ]);
  ignore (Kvmsim.Kvm.run vcpu);
  ignore (Kvmsim.Kvm.run vcpu);
  let st = Kvmsim.Kvm.stats sys in
  Alcotest.(check int) "vm count" 1 st.Kvmsim.Kvm.vm_creations;
  Alcotest.(check int) "vcpu count" 1 st.Kvmsim.Kvm.vcpu_creations;
  Alcotest.(check int) "runs" 2 st.Kvmsim.Kvm.runs;
  Alcotest.(check int) "io exits" 1 st.Kvmsim.Kvm.io_exits

let test_memory_region_required () =
  let sys = Kvmsim.Kvm.open_dev ~seed:9 () in
  let vm = Kvmsim.Kvm.create_vm sys in
  match Kvmsim.Kvm.vm_memory vm with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument without a region"

let test_reset_vcpu_clears_state () =
  let _, _, mem, vcpu = setup () in
  Vm.Memory.write_bytes mem ~off:0
    (Encoding.encode_program [ Instr.Mov (3, Instr.Imm 99L); Instr.Hlt ]);
  ignore (Kvmsim.Kvm.run vcpu);
  let cpu = Kvmsim.Kvm.vcpu_cpu vcpu in
  Alcotest.(check int64) "ran" 99L (Vm.Cpu.get_reg cpu 3);
  Kvmsim.Kvm.reset_vcpu vcpu ~mode:Vm.Modes.Real;
  Alcotest.(check int64) "cleared" 0L (Vm.Cpu.get_reg cpu 3);
  Alcotest.(check int) "pc reset" 0 (Vm.Cpu.pc cpu);
  Alcotest.(check bool) "mode switched" true (Vm.Cpu.mode cpu = Vm.Modes.Real)

let test_out_of_fuel_exit () =
  let _, _, mem, vcpu = setup () in
  Vm.Memory.write_bytes mem ~off:0 (Encoding.encode_program [ Instr.Jmp 0 ]);
  match Kvmsim.Kvm.run ~fuel:50 vcpu with
  | Kvmsim.Kvm.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected out of fuel"

let test_deterministic_given_seed () =
  let run_once () =
    let _, _, mem, vcpu = setup () in
    Vm.Memory.write_bytes mem ~off:0 hlt;
    ignore (Kvmsim.Kvm.run vcpu);
    Cycles.Clock.now (Kvmsim.Kvm.clock (Kvmsim.Kvm.vm_system (Kvmsim.Kvm.vcpu_vm vcpu)))
  in
  Alcotest.(check int64) "bit identical across runs" (run_once ()) (run_once ())

let () =
  Alcotest.run "kvmsim"
    [
      ( "kvm",
        [
          Alcotest.test_case "lifecycle costs" `Quick test_lifecycle_costs_charged;
          Alcotest.test_case "run hlt" `Quick test_run_hlt;
          Alcotest.test_case "run round-trip cost" `Quick test_run_charges_round_trip;
          Alcotest.test_case "io exit + resume" `Quick test_io_exit_and_resume;
          Alcotest.test_case "fault exit" `Quick test_fault_exit;
          Alcotest.test_case "stats counters" `Quick test_stats_counters;
          Alcotest.test_case "memory region required" `Quick test_memory_region_required;
          Alcotest.test_case "vcpu reset" `Quick test_reset_vcpu_clears_state;
          Alcotest.test_case "out of fuel" `Quick test_out_of_fuel_exit;
          Alcotest.test_case "deterministic" `Quick test_deterministic_given_seed;
        ] );
    ]
