(* The artifact-evaluation suite: the paper's major claims C1-C8
   (Artifact Appendix A.4.1), each asserted as an automated test with
   reduced trial counts. `bench/main.exe` prints the full tables; this
   suite fails CI if a code change breaks a claim's shape. *)

let mean_of f n = Stats.Descriptive.mean (Array.init n (fun _ -> Int64.to_float (f ())))

(* C1: the core components of virtual context creation comprise only a
   few tens of thousands of cycles (Table 1). *)
let test_c1_boot_cost () =
  let rng = Cycles.Rng.create ~seed:1 in
  let totals =
    Array.init 50 (fun _ ->
        let mem = Vm.Memory.create ~size:(64 * 1024) in
        let clock = Cycles.Clock.create () in
        float_of_int
          (Vm.Boot.total_cost (Vm.Boot.perform ~mem ~clock ~rng ~target:Vm.Modes.Long)))
  in
  let mean = Stats.Descriptive.mean totals in
  Alcotest.(check bool)
    (Printf.sprintf "long boot %.0f cycles in tens of thousands" mean)
    true
    (mean > 10_000.0 && mean < 100_000.0);
  (* the paging identity map dominates *)
  let mem = Vm.Memory.create ~size:(64 * 1024) in
  let comps =
    Vm.Boot.perform ~mem ~clock:(Cycles.Clock.create ()) ~rng ~target:Vm.Modes.Long
  in
  let cost name = (List.find (fun c -> c.Vm.Boot.name = name) comps).Vm.Boot.cycles in
  List.iter
    (fun other ->
      Alcotest.(check bool)
        (Printf.sprintf "paging > %s" other)
        true
        (cost "paging ident. map" > cost other))
    [ "protected transition"; "long transition"; "load 32-bit gdt"; "first instruction" ]

(* C2: function latency varies with processor mode; cheaper modes are an
   optimization opportunity (Figure 3). *)
let test_c2_mode_latency () =
  let fib = "virtine int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }" in
  let cost mode =
    let c = Vcc.Compile.compile ~snapshot:false ~mode fib in
    let w = Wasp.Runtime.create ~pool:false ~seed:2 () in
    mean_of
      (fun () -> (Vcc.Compile.invoke w c "fib" [ 12L ] ()).Wasp.Runtime.cycles)
      20
  in
  let real = cost Vm.Modes.Real and long = cost Vm.Modes.Long in
  Alcotest.(check bool)
    (Printf.sprintf "real %.0f < long %.0f by ~10K+" real long)
    true
    (long -. real > 10_000.0)

(* C3: a minimal-environment server answers in <1 ms (Figure 4). *)
let test_c3_echo_sub_ms () =
  let w = Wasp.Runtime.create ~seed:3 ~clean:`Async () in
  let compiled = Vhttp.Echo.compile () in
  ignore (Vhttp.Echo.run_once w compiled ~payload:"warm");
  let ms, _ = Vhttp.Echo.run_once w compiled ~payload:"GET / HTTP/1.0\r\n\r\n" in
  let us = Cycles.Clock.to_us (Wasp.Runtime.clock w) ms.Vhttp.Echo.send_done in
  Alcotest.(check bool) (Printf.sprintf "%.0f us < 1000" us) true (us < 1000.0)

(* C4: Wasp's creation latencies approach the vmrun hardware limit
   (Figure 8). *)
let test_c4_wasp_near_hardware_limit () =
  let sys = Kvmsim.Kvm.open_dev ~seed:4 () in
  let floor = Baselines.Contexts.Vmrun_floor.prepare sys in
  let vmrun = mean_of (fun () -> Baselines.Contexts.Vmrun_floor.measure floor) 100 in
  let w = Wasp.Runtime.create ~seed:4 ~clean:`Async () in
  let img = Wasp.Image.of_asm_string ~name:"hlt" ~mode:Vm.Modes.Real "hlt" in
  ignore (Wasp.Runtime.run w img ());
  let wasp_ca = mean_of (fun () -> (Wasp.Runtime.run w img ()).Wasp.Runtime.cycles) 100 in
  Alcotest.(check bool)
    (Printf.sprintf "Wasp+CA %.0f within 25%% of vmrun %.0f" wasp_ca vmrun)
    true
    (wasp_ca < 1.25 *. vmrun);
  let pthread = mean_of (fun () -> Baselines.Contexts.pthread_create_join sys) 100 in
  Alcotest.(check bool) "beats pthread" true (wasp_ca < pthread)

(* C5: creation overheads amortize with ~100 us of work; snapshotting
   pushes the amortization point down (Figure 11). *)
let test_c5_amortization () =
  let fib = "virtine int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }" in
  let compiled = Vcc.Compile.compile fib in
  let w = Wasp.Runtime.create ~seed:5 ~clean:`Async () in
  let native_clock = Cycles.Clock.create () in
  let arm n =
    ignore (Vcc.Compile.invoke w compiled "fib" [ Int64.of_int n ] ());
    let virt =
      mean_of
        (fun () -> (Vcc.Compile.invoke w compiled "fib" [ Int64.of_int n ] ()).Wasp.Runtime.cycles)
        10
    in
    let nat =
      mean_of
        (fun () ->
          let t0 = Cycles.Clock.now native_clock in
          ignore (Vcc.Compile.invoke_native ~clock:native_clock compiled "fib" [ Int64.of_int n ] ());
          Cycles.Clock.elapsed_since native_clock t0)
        10
    in
    virt /. nat
  in
  let small = arm 5 and large = arm 18 in
  Alcotest.(check bool)
    (Printf.sprintf "slowdown falls: fib(5) %.1fx -> fib(18) %.2fx" small large)
    true
    (small > 2.0 && large < 1.3)

(* C6: start-up becomes memory-bandwidth bound at ~2 MB image size
   (Figure 12). *)
let test_c6_memory_bound () =
  let base = Wasp.Image.of_asm_string ~name:"h" ~mode:Vm.Modes.Real "hlt" in
  let w = Wasp.Runtime.create ~seed:6 ~clean:`Async () in
  let startup size =
    let img = Wasp.Image.pad_to base size in
    ignore (Wasp.Runtime.run w img ());
    mean_of (fun () -> (Wasp.Runtime.run w img ()).Wasp.Runtime.cycles) 10
  in
  let at_2mb = startup (2 * 1024 * 1024) in
  let at_8mb = startup (8 * 1024 * 1024) in
  (* bandwidth-bound: 4x the bytes ~= 4x the cycles (within 25%) *)
  let ratio = at_8mb /. at_2mb in
  Alcotest.(check bool) (Printf.sprintf "scaling ratio %.2f ~ 4" ratio) true
    (ratio > 3.0 && ratio < 5.0);
  (* implied bandwidth in the 6-8 GB/s range at 8MB *)
  let gbps = 8.0 *. 1024.0 *. 1024.0 /. (at_8mb /. 2.69) in
  Alcotest.(check bool) (Printf.sprintf "%.1f GB/s near memcpy" gbps) true
    (gbps > 5.0 && gbps < 8.5)

(* C7: the virtine HTTP server loses <20% throughput vs native
   (Figure 13; throughput ~ 1/service under closed loop). *)
let test_c7_http_throughput () =
  let conn = 650_000.0 in
  let native_env = Wasp.Hostenv.create () in
  let path = Vhttp.Fileserver.add_default_files native_env in
  let clock = Cycles.Clock.create () in
  let rng = Cycles.Rng.create ~seed:7 in
  let native =
    mean_of
      (fun () ->
        (Vhttp.Fileserver.serve_native ~env:native_env ~clock ~rng ~path).Vhttp.Fileserver.cycles)
      50
    +. conn
  in
  let w = Wasp.Runtime.create ~seed:7 ~clean:`Async () in
  let vpath = Vhttp.Fileserver.add_default_files (Wasp.Runtime.env w) in
  let compiled = Vhttp.Fileserver.compile ~snapshot:true in
  ignore (Vhttp.Fileserver.serve_virtine w compiled ~path:vpath);
  let virt =
    mean_of
      (fun () -> (Vhttp.Fileserver.serve_virtine w compiled ~path:vpath).Vhttp.Fileserver.cycles)
      50
    +. conn
  in
  let tput_drop = 1.0 -. (native /. virt) in
  Alcotest.(check bool)
    (Printf.sprintf "throughput drop %.0f%% < 20%%" (tput_drop *. 100.0))
    true
    (tput_drop < 0.20)

(* C8: JS virtines cost <2x native; snapshotting helps when setup is
   non-trivial (Figure 14). *)
let test_c8_js_slowdown () =
  let input = Vjs.Workload.make_input ~size:512 in
  let clock = Cycles.Clock.create () in
  let baseline =
    mean_of
      (fun () -> (Vjs.Workload.run_baseline ~clock ~input).Vjs.Workload.latency_cycles)
      10
  in
  let w_plain = Wasp.Runtime.create ~seed:8 ~pool:false ~clean:`Async () in
  let plain =
    mean_of
      (fun () ->
        (Vjs.Workload.run_virtine w_plain ~input ~snapshot:false ~teardown:true ~key:"c8")
          .Vjs.Workload.latency_cycles)
      10
  in
  let w_snap = Wasp.Runtime.create ~seed:8 ~clean:`Async () in
  ignore (Vjs.Workload.run_virtine w_snap ~input ~snapshot:true ~teardown:false ~key:"c8s");
  let snap_nt =
    mean_of
      (fun () ->
        (Vjs.Workload.run_virtine w_snap ~input ~snapshot:true ~teardown:false ~key:"c8s")
          .Vjs.Workload.latency_cycles)
      10
  in
  Alcotest.(check bool)
    (Printf.sprintf "plain virtine %.2fx < 2x" (plain /. baseline))
    true
    (plain /. baseline < 2.0);
  Alcotest.(check bool)
    (Printf.sprintf "snapshot+NT %.2fx < plain %.2fx" (snap_nt /. baseline) (plain /. baseline))
    true
    (snap_nt < plain)

let () =
  Alcotest.run "claims"
    [
      ( "artifact-appendix",
        [
          Alcotest.test_case "C1: boot cost tens of thousands" `Quick test_c1_boot_cost;
          Alcotest.test_case "C2: processor-mode savings" `Quick test_c2_mode_latency;
          Alcotest.test_case "C3: echo server < 1ms" `Quick test_c3_echo_sub_ms;
          Alcotest.test_case "C4: Wasp near hardware limit" `Quick test_c4_wasp_near_hardware_limit;
          Alcotest.test_case "C5: amortization" `Quick test_c5_amortization;
          Alcotest.test_case "C6: memory-bandwidth bound" `Quick test_c6_memory_bound;
          Alcotest.test_case "C7: HTTP throughput < 20% drop" `Quick test_c7_http_throughput;
          Alcotest.test_case "C8: JS slowdown < 2x" `Quick test_c8_js_slowdown;
        ] );
    ]
