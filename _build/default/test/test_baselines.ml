(* Tests for the Figure 2/8 context-creation baselines. *)

let sys () = Kvmsim.Kvm.open_dev ~seed:77 ()

let mean_of f sys n =
  let xs = Array.init n (fun _ -> Int64.to_float (f sys)) in
  Stats.Descriptive.mean (Stats.Descriptive.tukey_filter xs)

let test_function_call_tiny () =
  let s = sys () in
  let m = mean_of Baselines.Contexts.function_call s 200 in
  Alcotest.(check bool) (Printf.sprintf "~10 cycles, got %.1f" m) true (m > 2.0 && m < 50.0)

let test_figure2_ordering () =
  (* function < vmrun < pthread < kvm-cold < process *)
  let s = sys () in
  let fn = mean_of Baselines.Contexts.function_call s 100 in
  let floor = Baselines.Contexts.Vmrun_floor.prepare s in
  let vmrun =
    Stats.Descriptive.mean
      (Array.init 100 (fun _ -> Int64.to_float (Baselines.Contexts.Vmrun_floor.measure floor)))
  in
  let thread = mean_of Baselines.Contexts.pthread_create_join s 100 in
  let kvm = mean_of Baselines.Contexts.kvm_cold s 50 in
  let proc = mean_of Baselines.Contexts.process_spawn s 50 in
  Alcotest.(check bool) (Printf.sprintf "fn %.0f < vmrun %.0f" fn vmrun) true (fn < vmrun);
  Alcotest.(check bool) (Printf.sprintf "vmrun %.0f < pthread %.0f" vmrun thread) true
    (vmrun < thread);
  Alcotest.(check bool) (Printf.sprintf "pthread %.0f < kvm %.0f" thread kvm) true (thread < kvm);
  Alcotest.(check bool) (Printf.sprintf "kvm %.0f < process %.0f" kvm proc) true (kvm < proc)

let test_vmrun_floor_magnitude () =
  let s = sys () in
  let floor = Baselines.Contexts.Vmrun_floor.prepare s in
  let v = Int64.to_float (Baselines.Contexts.Vmrun_floor.measure floor) in
  (* the ioctl + checks + entry + exit path is ~10K cycles (~3.5 us) *)
  Alcotest.(check bool) (Printf.sprintf "vmrun %.0f in [6K, 16K]" v) true
    (v > 6_000.0 && v < 16_000.0)

let test_kvm_cold_actually_runs_guest () =
  let s = sys () in
  ignore (Baselines.Contexts.kvm_cold s);
  let stats = Kvmsim.Kvm.stats s in
  Alcotest.(check int) "vm created" 1 stats.Kvmsim.Kvm.vm_creations;
  Alcotest.(check int) "one run" 1 stats.Kvmsim.Kvm.runs

let test_sgx_create_vs_ecall () =
  let s = sys () in
  let create = Int64.to_float (Baselines.Contexts.Sgx.create s ~enclave_kb:4096) in
  let ecall = Int64.to_float (Baselines.Contexts.Sgx.ecall s) in
  Alcotest.(check bool) "create far above ecall" true (create > 50.0 *. ecall);
  (* ECALL ~5 us = ~13.5K cycles *)
  Alcotest.(check bool) (Printf.sprintf "ecall %.0f in [8K, 25K]" ecall) true
    (ecall > 8_000.0 && ecall < 25_000.0)

let test_sgx_create_scales_with_size () =
  let s = sys () in
  let small = Baselines.Contexts.Sgx.create s ~enclave_kb:64 in
  let big = Baselines.Contexts.Sgx.create s ~enclave_kb:4096 in
  Alcotest.(check bool) "EADD per page dominates" true (big > Int64.mul 4L small)

let test_wasp_vs_baselines_figure8 () =
  (* Wasp pooled provisioning must land between vmrun and pthread *)
  let w = Wasp.Runtime.create ~clean:`Async () in
  (* the minimal shell-provisioning image is real-mode: no GDT, no paging
     (Figure 8 measures provisioning, not a long-mode boot) *)
  let img = Wasp.Image.of_asm_string ~name:"hlt" ~mode:Vm.Modes.Real "hlt" in
  ignore (Wasp.Runtime.run w img ());
  (* warm *)
  let warm = (Wasp.Runtime.run w img ()).Wasp.Runtime.cycles in
  let s = sys () in
  let floor = Baselines.Contexts.Vmrun_floor.prepare s in
  let vmrun = Baselines.Contexts.Vmrun_floor.measure floor in
  let thread = Baselines.Contexts.pthread_create_join s in
  Alcotest.(check bool)
    (Printf.sprintf "vmrun %Ld <= wasp+CA %Ld" vmrun warm)
    true (warm >= vmrun);
  Alcotest.(check bool)
    (Printf.sprintf "wasp+CA %Ld < pthread %Ld" warm thread)
    true (warm < thread);
  (* paper: caching brings provisioning within a few percent of vmrun;
     allow up to 2x in the simulation *)
  Alcotest.(check bool)
    (Printf.sprintf "wasp+CA %Ld within 2x of vmrun %Ld" warm vmrun)
    true
    (Int64.to_float warm < 2.0 *. Int64.to_float vmrun)

let () =
  Alcotest.run "baselines"
    [
      ( "contexts",
        [
          Alcotest.test_case "function call tiny" `Quick test_function_call_tiny;
          Alcotest.test_case "figure 2 ordering" `Quick test_figure2_ordering;
          Alcotest.test_case "vmrun floor magnitude" `Quick test_vmrun_floor_magnitude;
          Alcotest.test_case "kvm cold runs guest" `Quick test_kvm_cold_actually_runs_guest;
          Alcotest.test_case "sgx create vs ecall" `Quick test_sgx_create_vs_ecall;
          Alcotest.test_case "sgx scales with size" `Quick test_sgx_create_scales_with_size;
          Alcotest.test_case "wasp between vmrun and pthread" `Quick
            test_wasp_vs_baselines_figure8;
        ] );
    ]
