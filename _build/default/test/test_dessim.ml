(* Tests for the discrete-event simulator. *)

let test_empty_run () =
  let sim = Dessim.Sim.create () in
  Dessim.Sim.run sim;
  Alcotest.(check int64) "time stays 0" 0L (Dessim.Sim.now sim)

let test_event_order () =
  let sim = Dessim.Sim.create () in
  let log = ref [] in
  Dessim.Sim.schedule sim ~delay:30L (fun () -> log := 3 :: !log);
  Dessim.Sim.schedule sim ~delay:10L (fun () -> log := 1 :: !log);
  Dessim.Sim.schedule sim ~delay:20L (fun () -> log := 2 :: !log);
  Dessim.Sim.run sim;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int64) "clock at last event" 30L (Dessim.Sim.now sim)

let test_fifo_at_equal_times () =
  let sim = Dessim.Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Dessim.Sim.schedule sim ~delay:10L (fun () -> log := i :: !log)
  done;
  Dessim.Sim.run sim;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_nested_scheduling () =
  let sim = Dessim.Sim.create () in
  let fired = ref 0L in
  Dessim.Sim.schedule sim ~delay:5L (fun () ->
      Dessim.Sim.schedule sim ~delay:7L (fun () -> fired := Dessim.Sim.now sim));
  Dessim.Sim.run sim;
  Alcotest.(check int64) "nested time" 12L !fired

let test_run_until () =
  let sim = Dessim.Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Dessim.Sim.schedule sim ~delay:(Int64.of_int (i * 10)) (fun () -> incr count)
  done;
  Dessim.Sim.run ~until:45L sim;
  Alcotest.(check int) "only events <= 45" 4 !count;
  Alcotest.(check int) "rest pending" 6 (Dessim.Sim.pending sim)

let test_negative_delay_rejected () =
  let sim = Dessim.Sim.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Sim.schedule: negative delay")
    (fun () -> Dessim.Sim.schedule sim ~delay:(-1L) (fun () -> ()))

let test_at_in_past_fires () =
  let sim = Dessim.Sim.create () in
  let fired = ref false in
  Dessim.Sim.schedule sim ~delay:100L (fun () ->
      Dessim.Sim.at sim ~time:5L (fun () -> fired := true));
  Dessim.Sim.run sim;
  Alcotest.(check bool) "past events fire" true !fired

let test_many_events_heap_growth () =
  let sim = Dessim.Sim.create () in
  let count = ref 0 in
  let rng = Cycles.Rng.create ~seed:99 in
  for _ = 1 to 10_000 do
    Dessim.Sim.schedule sim ~delay:(Int64.of_int (Cycles.Rng.int rng 100000)) (fun () ->
        incr count)
  done;
  Dessim.Sim.run sim;
  Alcotest.(check int) "all fired" 10_000 !count

let test_server_fifo_queueing () =
  let sim = Dessim.Sim.create () in
  (* constant 100-cycle service *)
  let server = Dessim.Sim.Server.create sim ~service:(fun ~now:_ -> 100L) in
  let waits = ref [] in
  (* three requests arrive together: waits 0, 100, 200 *)
  for _ = 1 to 3 do
    Dessim.Sim.Server.submit server ~on_done:(fun ~wait ~service:_ -> waits := wait :: !waits)
  done;
  Dessim.Sim.run sim;
  Alcotest.(check (list int64)) "queueing delays" [ 0L; 100L; 200L ] (List.rev !waits);
  Alcotest.(check int) "completed" 3 (Dessim.Sim.Server.completed server);
  Alcotest.(check int64) "busy" 300L (Dessim.Sim.Server.busy_cycles server)

let test_server_idle_then_busy () =
  let sim = Dessim.Sim.create () in
  let server = Dessim.Sim.Server.create sim ~service:(fun ~now:_ -> 50L) in
  let done_times = ref [] in
  Dessim.Sim.Server.submit server ~on_done:(fun ~wait:_ ~service:_ ->
      done_times := Dessim.Sim.now sim :: !done_times);
  Dessim.Sim.schedule sim ~delay:200L (fun () ->
      Dessim.Sim.Server.submit server ~on_done:(fun ~wait ~service:_ ->
          Alcotest.(check int64) "no wait when idle" 0L wait;
          done_times := Dessim.Sim.now sim :: !done_times));
  Dessim.Sim.run sim;
  Alcotest.(check (list int64)) "completion times" [ 50L; 250L ] (List.rev !done_times)

let () =
  Alcotest.run "dessim"
    [
      ( "events",
        [
          Alcotest.test_case "empty run" `Quick test_empty_run;
          Alcotest.test_case "event order" `Quick test_event_order;
          Alcotest.test_case "fifo at equal times" `Quick test_fifo_at_equal_times;
          Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "negative delay" `Quick test_negative_delay_rejected;
          Alcotest.test_case "past events" `Quick test_at_in_past_fires;
          Alcotest.test_case "heap growth" `Quick test_many_events_heap_growth;
        ] );
      ( "server",
        [
          Alcotest.test_case "fifo queueing" `Quick test_server_fifo_queueing;
          Alcotest.test_case "idle then busy" `Quick test_server_idle_then_busy;
        ] );
    ]
