(* Property-based tests for the Wasp core: policy algebra, dirty-page
   tracking, and the equivalence of copy-on-write and full snapshot
   restores under arbitrary write sequences. *)

(* ------------------------------------------------------------------ *)
(* Policy algebra                                                       *)
(* ------------------------------------------------------------------ *)

let gen_nr = QCheck.Gen.int_range 0 (Wasp.Hc.count - 1)

let prop_mask_matches_list =
  QCheck.Test.make ~name:"of_list and mask_of_list agree" ~count:500
    (QCheck.make QCheck.Gen.(pair (list_size (int_range 0 8) gen_nr) gen_nr))
    (fun (allowed, probe) ->
      let p = Wasp.Policy.of_list allowed in
      let expected = probe = Wasp.Hc.exit_ || List.mem probe allowed in
      Wasp.Policy.allows p probe = expected)

let prop_deny_all_denies_everything_but_exit =
  QCheck.Test.make ~name:"deny-all admits only exit" ~count:200 (QCheck.make gen_nr)
    (fun nr -> Wasp.Policy.allows Wasp.Policy.deny_all nr = (nr = Wasp.Hc.exit_))

let prop_allow_all_admits_everything =
  QCheck.Test.make ~name:"allow-all admits everything" ~count:200 (QCheck.make gen_nr)
    (fun nr -> Wasp.Policy.allows Wasp.Policy.allow_all nr)

let prop_mask_monotone =
  QCheck.Test.make ~name:"adding a grant never revokes" ~count:300
    (QCheck.make QCheck.Gen.(triple (list_size (int_range 0 6) gen_nr) gen_nr gen_nr))
    (fun (allowed, extra, probe) ->
      let small = Wasp.Policy.of_list allowed in
      let big = Wasp.Policy.of_list (extra :: allowed) in
      (not (Wasp.Policy.allows small probe)) || Wasp.Policy.allows big probe)

(* ------------------------------------------------------------------ *)
(* Dirty-page tracking                                                  *)
(* ------------------------------------------------------------------ *)

let mem_size = 64 * 1024

type write_op = { addr : int; width : int; value : int64 }

let gen_write =
  QCheck.Gen.(
    let* width = oneofl [ 1; 2; 4; 8 ] in
    let* addr = int_range 0 (mem_size - 8) in
    let* value = map Int64.of_int int in
    return { addr; width; value })

let apply_write mem { addr; width; value } =
  match width with
  | 1 -> Vm.Memory.write_u8 mem addr (Int64.to_int value land 0xFF)
  | 2 -> Vm.Memory.write_u16 mem addr (Int64.to_int value land 0xFFFF)
  | 4 -> Vm.Memory.write_u32 mem addr (Int64.to_int value land 0xFFFFFFFF)
  | _ -> Vm.Memory.write_u64 mem addr value

let print_writes ws =
  String.concat "; "
    (List.map (fun w -> Printf.sprintf "w%d@0x%x=%Ld" w.width w.addr w.value) ws)

let arb_writes n = QCheck.make ~print:print_writes QCheck.Gen.(list_size (int_range 0 n) gen_write)

let prop_dirty_covers_all_writes =
  QCheck.Test.make ~name:"dirty pages cover every write" ~count:300 (arb_writes 40)
    (fun writes ->
      let mem = Vm.Memory.create ~size:mem_size in
      Vm.Memory.clear_dirty mem;
      List.iter (apply_write mem) writes;
      let dirty = Vm.Memory.dirty_pages mem in
      List.for_all
        (fun w ->
          let first = w.addr / Vm.Memory.page_size in
          let last = (w.addr + w.width - 1) / Vm.Memory.page_size in
          List.mem first dirty && List.mem last dirty)
        writes)

let prop_clear_dirty_resets =
  QCheck.Test.make ~name:"clear_dirty resets tracking" ~count:200 (arb_writes 20)
    (fun writes ->
      let mem = Vm.Memory.create ~size:mem_size in
      List.iter (apply_write mem) writes;
      Vm.Memory.clear_dirty mem;
      Vm.Memory.dirty_count mem = 0)

(* ------------------------------------------------------------------ *)
(* CoW restore == full restore                                          *)
(* ------------------------------------------------------------------ *)

(* Build a snapshot from one write sequence, dirty the memory with a
   second sequence, restore with both mechanisms, and require byte-exact
   agreement of the full guest memory. *)
let prop_cow_restore_equals_full_restore =
  QCheck.Test.make ~name:"CoW restore is byte-identical to full restore" ~count:200
    (QCheck.make
       ~print:(fun (a, b) -> "init: " ^ print_writes a ^ " / dirty: " ^ print_writes b)
       QCheck.Gen.(pair (list_size (int_range 0 25) gen_write) (list_size (int_range 0 25) gen_write)))
    (fun (init_writes, dirty_writes) ->
      let store = Wasp.Snapshot_store.create () in
      (* capture a snapshot of memory after the init sequence *)
      let mem_a = Vm.Memory.create ~size:mem_size in
      let cpu_a = Vm.Cpu.create ~mem:mem_a ~mode:Vm.Modes.Long ~clock:(Cycles.Clock.create ()) in
      List.iter (apply_write mem_a) init_writes;
      ignore
        (Wasp.Snapshot_store.capture store ~key:"p" ~mem:mem_a ~cpu:cpu_a ~native_state:None);
      let entry = Option.get (Wasp.Snapshot_store.find store ~key:"p") in
      (* arm 1: CoW — memory holds the snapshot, gets dirtied, CoW-restored *)
      let mem_cow = Vm.Memory.create ~size:mem_size in
      let cpu_cow =
        Vm.Cpu.create ~mem:mem_cow ~mode:Vm.Modes.Long ~clock:(Cycles.Clock.create ())
      in
      ignore (Wasp.Snapshot_store.restore entry ~mem:mem_cow ~cpu:cpu_cow);
      List.iter (apply_write mem_cow) dirty_writes;
      ignore (Wasp.Snapshot_store.restore_cow entry ~mem:mem_cow ~cpu:cpu_cow);
      (* arm 2: full restore into a clean region *)
      let mem_full = Vm.Memory.create ~size:mem_size in
      let cpu_full =
        Vm.Cpu.create ~mem:mem_full ~mode:Vm.Modes.Long ~clock:(Cycles.Clock.create ())
      in
      ignore (Wasp.Snapshot_store.restore entry ~mem:mem_full ~cpu:cpu_full);
      Vm.Memory.snapshot mem_cow = Vm.Memory.snapshot mem_full)

(* ------------------------------------------------------------------ *)
(* Pool invariants                                                      *)
(* ------------------------------------------------------------------ *)

let prop_pool_counters_consistent =
  QCheck.Test.make ~name:"pool counters stay consistent" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_range 1 30) (oneofl [ 16 * 1024; 64 * 1024 ])))
    (fun sizes ->
      let sys = Kvmsim.Kvm.open_dev ~seed:3 () in
      let pool = Wasp.Pool.create sys ~clean:Wasp.Pool.Sync in
      List.iter
        (fun mem_size ->
          let shell, _ = Wasp.Pool.acquire pool ~mem_size ~mode:Vm.Modes.Long in
          Wasp.Pool.release pool shell)
        sizes;
      let stats = Wasp.Pool.stats pool in
      stats.Wasp.Pool.created + stats.Wasp.Pool.reused = List.length sizes
      && stats.Wasp.Pool.cleans = List.length sizes
      && Wasp.Pool.size pool = stats.Wasp.Pool.created)

let prop_pooled_shells_always_clean =
  QCheck.Test.make ~name:"a reacquired shell is always zeroed" ~count:100 (arb_writes 10)
    (fun writes ->
      let sys = Kvmsim.Kvm.open_dev ~seed:4 () in
      let pool = Wasp.Pool.create sys ~clean:Wasp.Pool.Sync in
      let shell, _ = Wasp.Pool.acquire pool ~mem_size ~mode:Vm.Modes.Long in
      List.iter (apply_write shell.Wasp.Pool.mem) writes;
      Wasp.Pool.release pool shell;
      let shell2, from_pool = Wasp.Pool.acquire pool ~mem_size ~mode:Vm.Modes.Long in
      from_pool
      && Vm.Memory.snapshot shell2.Wasp.Pool.mem = Bytes.make mem_size '\000')

let () =
  Alcotest.run "wasp-properties"
    [
      ( "policy",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_mask_matches_list;
            prop_deny_all_denies_everything_but_exit;
            prop_allow_all_admits_everything;
            prop_mask_monotone;
          ] );
      ( "dirty-tracking",
        List.map QCheck_alcotest.to_alcotest
          [ prop_dirty_covers_all_writes; prop_clear_dirty_resets ] );
      ( "cow",
        List.map QCheck_alcotest.to_alcotest [ prop_cow_restore_equals_full_restore ] );
      ( "pool",
        List.map QCheck_alcotest.to_alcotest
          [ prop_pool_counters_consistent; prop_pooled_shells_always_clean ] );
    ]
