(* Tests for the vjs JavaScript engine and the Figure 14 workload. *)

module V = Vjs.Jsvalue

let eval_num src =
  let e = Vjs.Engine.create () in
  match Vjs.Engine.eval e src with
  | Ok (V.Num n) -> n
  | Ok v -> Alcotest.failf "expected number, got %s" (V.to_string v)
  | Error msg -> Alcotest.failf "js error: %s" msg

let eval_str src =
  let e = Vjs.Engine.create () in
  match Vjs.Engine.eval e src with
  | Ok (V.Str s) -> s
  | Ok v -> Alcotest.failf "expected string, got %s" (V.to_string v)
  | Error msg -> Alcotest.failf "js error: %s" msg

let eval_value src =
  let e = Vjs.Engine.create () in
  match Vjs.Engine.eval e src with
  | Ok v -> v
  | Error msg -> Alcotest.failf "js error: %s" msg

let fnum = Alcotest.(check (float 1e-9))

let test_arithmetic () =
  fnum "arith" 14.0 (eval_num "2 + 3 * 4");
  fnum "paren" 20.0 (eval_num "(2 + 3) * 4");
  fnum "float div" 2.5 (eval_num "5 / 2");
  fnum "mod" 1.0 (eval_num "7 % 3");
  fnum "neg" (-6.0) (eval_num "-2 * 3")

let test_variables () =
  fnum "var" 15.0 (eval_num "var x = 5; x * 3");
  fnum "assign" 7.0 (eval_num "var x = 1; x = 7; x");
  fnum "compound" 12.0 (eval_num "var x = 3; x += 9; x")

let test_strings () =
  Alcotest.(check string) "concat" "hello world" (eval_str {|"hello" + " " + "world"|});
  fnum "length" 5.0 (eval_num {|"hello".length|});
  Alcotest.(check string) "charAt" "e" (eval_str {|"hello".charAt(1)|});
  fnum "charCodeAt" 104.0 (eval_num {|"hello".charCodeAt(0)|});
  Alcotest.(check string) "fromCharCode" "AB" (eval_str "String.fromCharCode(65, 66)");
  Alcotest.(check string) "substring" "ell" (eval_str {|"hello".substring(1, 4)|});
  fnum "indexOf" 2.0 (eval_num {|"hello".indexOf("ll")|});
  Alcotest.(check string) "upper" "HI" (eval_str {|"hi".toUpperCase()|});
  Alcotest.(check string) "number to string" "42x" (eval_str {|42 + "x"|})

let test_bitwise () =
  (* JS ToInt32 semantics *)
  fnum "and" 4.0 (eval_num "12 & 6");
  fnum "or" 14.0 (eval_num "12 | 6");
  fnum "xor" 10.0 (eval_num "12 ^ 6");
  fnum "shl" 48.0 (eval_num "12 << 2");
  fnum "shr" 3.0 (eval_num "12 >> 2");
  fnum "not" (-13.0) (eval_num "~12")

let test_comparisons () =
  fnum "lt true" 1.0 (eval_num "(1 < 2) ? 1 : 0");
  fnum "strict eq" 0.0 (eval_num {|(1 === "1") ? 1 : 0|});
  fnum "loose eq" 1.0 (eval_num {|(1 == "1") ? 1 : 0|});
  fnum "strict neq" 1.0 (eval_num {|(1 !== "1") ? 1 : 0|})

let test_control_flow () =
  fnum "if" 10.0 (eval_num "var x = 0; if (true) { x = 10; } else { x = 20; } x");
  fnum "while" 45.0
    (eval_num "var s = 0; var i = 0; while (i < 10) { s += i; i++; } s");
  fnum "for" 45.0 (eval_num "var s = 0; for (var i = 0; i < 10; i++) { s += i; } s");
  fnum "break" 3.0
    (eval_num "var i = 0; while (true) { if (i === 3) { break; } i++; } i");
  fnum "continue" 25.0
    (eval_num
       "var s = 0; for (var i = 0; i < 10; i++) { if (i % 2 === 0) { continue; } s += i; } s")

let test_functions () =
  fnum "call" 7.0 (eval_num "function add(a, b) { return a + b; } add(3, 4)");
  fnum "recursion" 120.0
    (eval_num "function fact(n) { if (n < 2) { return 1; } return n * fact(n - 1); } fact(5)");
  fnum "hoisting" 9.0 (eval_num "var r = sq(3); function sq(x) { return x * x; } r");
  fnum "expression fn" 16.0 (eval_num "var f = function(x) { return x * x; }; f(4)")

let test_closures () =
  fnum "closure" 15.0
    (eval_num
       {|function adder(n) { return function(x) { return x + n; }; }
         var add5 = adder(5);
         add5(10)|});
  fnum "closure state" 3.0
    (eval_num
       {|function counter() { var c = 0; return function() { c = c + 1; return c; }; }
         var next = counter();
         next(); next(); next()|})

let test_arrays () =
  fnum "literal index" 20.0 (eval_num "var a = [10, 20, 30]; a[1]");
  fnum "length" 3.0 (eval_num "[1,2,3].length");
  fnum "push" 4.0 (eval_num "var a = [1,2,3]; a.push(9); a.length");
  fnum "pop" 3.0 (eval_num "var a = [1,2,3]; a.pop()");
  Alcotest.(check string) "join" "1-2-3" (eval_str {|[1,2,3].join("-")|});
  fnum "assign element" 99.0 (eval_num "var a = [0]; a[0] = 99; a[0]");
  fnum "grow" 5.0 (eval_num "var a = []; a[4] = 1; a.length")

let test_objects () =
  fnum "literal" 42.0 (eval_num "var o = { x: 42 }; o.x");
  fnum "assign prop" 10.0 (eval_num "var o = {}; o.y = 10; o.y");
  fnum "index string" 7.0 (eval_num {|var o = { k: 7 }; o["k"]|});
  Alcotest.(check string) "typeof" "object" (eval_str "typeof {}")

let test_array_higher_order () =
  fnum "map" 6.0 (eval_num "[1,2,3].map(function(x) { return x * 2; })[2]");
  fnum "filter" 2.0 (eval_num "[1,2,3,4].filter(function(x) { return x % 2 === 0; }).length");
  fnum "reduce" 10.0 (eval_num "[1,2,3,4].reduce(function(a, x) { return a + x; }, 0)");
  fnum "reduce no seed" 24.0 (eval_num "[2,3,4].reduce(function(a, x) { return a * x; })");
  fnum "forEach" 12.0
    (eval_num "var s = 0; [1,2,3].forEach(function(x) { s += x * 2; }); s");
  fnum "concat" 5.0 (eval_num "[1,2].concat([3,4,5]).length");
  fnum "reverse" 3.0 (eval_num "[1,2,3].reverse()[0]")

let test_json () =
  Alcotest.(check string) "stringify object" {|{"a":1,"b":[true,null,"x"]}|}
    (eval_str {|JSON.stringify({ a: 1, b: [true, null, "x"] })|});
  Alcotest.(check string) "stringify escapes" "\"a\\nb\"" (eval_str "JSON.stringify(\"a\\nb\")");
  fnum "parse number" 42.0 (eval_num {|JSON.parse("42")|});
  fnum "parse nested" 7.0
    (eval_num "JSON.parse(\"{\\\"x\\\": [1, {\\\"y\\\": 7}]}\").x[1].y");
  fnum "roundtrip" 3.0
    (eval_num {|JSON.parse(JSON.stringify({ k: [1, 2, 3] })).k.length|});
  (* parse errors surface as JS errors, not crashes *)
  let e = Vjs.Engine.create () in
  match Vjs.Engine.eval e {|JSON.parse("{bad json")|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error"

let test_try_catch () =
  fnum "catch" 7.0 (eval_num {|var r = 0; try { throw 7; r = 1; } catch (e) { r = e; } r|});
  fnum "no throw" 1.0 (eval_num "var r = 0; try { r = 1; } catch (e) { r = 2; } r");
  fnum "finally always" 3.0
    (eval_num "var r = 0; try { r = 1; } finally { r = 3; } r");
  fnum "finally after catch" 5.0
    (eval_num "var r = 0; try { throw 1; } catch (e) { r = 4; } finally { r = r + 1; } r");
  Alcotest.(check string) "throw value" "boom"
    (eval_str {|var r = ""; try { throw "boom"; } catch (e) { r = e; } r|});
  (* runtime errors are catchable *)
  fnum "catch runtime error" 9.0
    (eval_num "var r = 0; try { undefined_fn(); } catch (e) { r = 9; } r");
  (* throws propagate through calls *)
  fnum "propagation" 42.0
    (eval_num
       {|function inner() { throw 42; }
         function outer() { inner(); return 0; }
         var r = 0;
         try { outer(); } catch (e) { r = e; }
         r|})

let test_uncaught_throw_is_error () =
  let e = Vjs.Engine.create () in
  (match Vjs.Engine.eval e "throw 5;" with
  | Error msg -> Alcotest.(check bool) "uncaught" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected error");
  (* engine survives *)
  match Vjs.Engine.eval e "1 + 1" with
  | Ok (V.Num 2.0) -> ()
  | _ -> Alcotest.fail "engine should survive a throw"

let test_math_builtins () =
  fnum "floor" 3.0 (eval_num "Math.floor(3.9)");
  fnum "max" 9.0 (eval_num "Math.max(1, 9, 4)");
  fnum "abs" 5.0 (eval_num "Math.abs(0 - 5)");
  fnum "pow" 8.0 (eval_num "Math.pow(2, 3)")

let test_truthiness () =
  fnum "empty string falsy" 0.0 (eval_num {|"" ? 1 : 0|});
  fnum "zero falsy" 0.0 (eval_num "0 ? 1 : 0");
  fnum "null falsy" 0.0 (eval_num "null ? 1 : 0");
  fnum "object truthy" 1.0 (eval_num "({}) ? 1 : 0");
  (* && returns the first falsy operand without evaluating the rest *)
  match eval_value "false && missing_fn()" with
  | V.Bool false -> ()
  | v -> Alcotest.failf "shortcircuit: got %s" (V.to_string v)

let test_errors () =
  let e = Vjs.Engine.create () in
  (match Vjs.Engine.eval e "undefined_variable_xyz" with
  | Error msg -> Alcotest.(check bool) "reference error" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected error");
  (match Vjs.Engine.eval e "var x = (" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected syntax error");
  (* the engine survives errors *)
  match Vjs.Engine.eval e "1 + 1" with
  | Ok (V.Num 2.0) -> ()
  | _ -> Alcotest.fail "engine should survive"

let test_step_budget () =
  let e = Vjs.Engine.create () in
  match Vjs.Engine.eval e "while (true) { }" with
  | Error msg -> Alcotest.(check bool) "budget error" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected step budget error"

let test_native_bindings () =
  let e = Vjs.Engine.create () in
  Vjs.Engine.register e "host_add" (fun args ->
      match args with
      | [ V.Num a; V.Num b ] -> V.Num (a +. b)
      | _ -> V.Undefined);
  match Vjs.Engine.eval e "host_add(20, 22)" with
  | Ok (V.Num 42.0) -> ()
  | other ->
      Alcotest.failf "binding failed: %s"
        (match other with Ok v -> V.to_string v | Error e -> e)

let test_print_console () =
  let e = Vjs.Engine.create () in
  (match Vjs.Engine.eval e {|print("hello", 42)|} with Ok _ -> () | Error m -> Alcotest.fail m);
  Alcotest.(check string) "console" "hello 42\n" (Vjs.Engine.console_output e)

let test_engine_charges () =
  let total = ref 0 in
  let e = Vjs.Engine.create ~charge:(fun c -> total := !total + c) () in
  Alcotest.(check bool) "alloc charged" true (!total >= Vjs.Engine.context_alloc_cycles);
  let before = !total in
  (match Vjs.Engine.eval e "1 + 1" with Ok _ -> () | Error m -> Alcotest.fail m);
  Alcotest.(check bool) "eval charged" true (!total > before);
  let before = !total in
  Vjs.Engine.destroy e;
  Alcotest.(check int) "teardown charged" (before + Vjs.Engine.teardown_cycles) !total

(* ------------------------------------------------------------------ *)
(* The base64 workload (§6.5)                                           *)
(* ------------------------------------------------------------------ *)

let test_workload_baseline_correct () =
  let input = Vjs.Workload.make_input ~size:300 in
  let clock = Cycles.Clock.create () in
  let out = Vjs.Workload.run_baseline ~clock ~input in
  Alcotest.(check string) "matches reference" (Vjs.Workload.reference_encode input) out.output;
  Alcotest.(check bool) "charged" true (out.latency_cycles > 0L)

let test_workload_baseline_sizes () =
  let clock = Cycles.Clock.create () in
  List.iter
    (fun size ->
      let input = Vjs.Workload.make_input ~size in
      let out = Vjs.Workload.run_baseline ~clock ~input in
      Alcotest.(check string)
        (Printf.sprintf "size %d" size)
        (Vjs.Workload.reference_encode input)
        out.output)
    [ 0; 1; 2; 3; 4; 100 ]

let test_workload_virtine_correct () =
  let w = Wasp.Runtime.create () in
  let input = Vjs.Workload.make_input ~size:300 in
  let out = Vjs.Workload.run_virtine w ~input ~snapshot:false ~teardown:true ~key:"k1" in
  Alcotest.(check string) "virtine output" (Vjs.Workload.reference_encode input) out.output

let test_workload_snapshot_correct_and_faster () =
  let w = Wasp.Runtime.create () in
  let input = Vjs.Workload.make_input ~size:300 in
  let r1 = Vjs.Workload.run_virtine w ~input ~snapshot:true ~teardown:true ~key:"k2" in
  let r2 = Vjs.Workload.run_virtine w ~input ~snapshot:true ~teardown:true ~key:"k2" in
  Alcotest.(check string) "still correct" (Vjs.Workload.reference_encode input) r2.output;
  Alcotest.(check bool)
    (Printf.sprintf "snapshot faster: %Ld < %Ld" r2.latency_cycles r1.latency_cycles)
    true
    (r2.latency_cycles < r1.latency_cycles)

let test_workload_nt_faster () =
  let w = Wasp.Runtime.create () in
  let input = Vjs.Workload.make_input ~size:300 in
  (* warm both snapshot keys *)
  ignore (Vjs.Workload.run_virtine w ~input ~snapshot:true ~teardown:true ~key:"kt");
  ignore (Vjs.Workload.run_virtine w ~input ~snapshot:true ~teardown:false ~key:"knt");
  let with_td = Vjs.Workload.run_virtine w ~input ~snapshot:true ~teardown:true ~key:"kt" in
  let no_td = Vjs.Workload.run_virtine w ~input ~snapshot:true ~teardown:false ~key:"knt" in
  Alcotest.(check bool)
    (Printf.sprintf "NT faster: %Ld < %Ld" no_td.latency_cycles with_td.latency_cycles)
    true
    (no_td.latency_cycles < with_td.latency_cycles)

let test_workload_baseline_latency_ballpark () =
  (* the paper's baseline is 419 us; ours should be the same order *)
  let clock = Cycles.Clock.create () in
  let input = Vjs.Workload.make_input ~size:1024 in
  let out = Vjs.Workload.run_baseline ~clock ~input in
  let us = Cycles.Clock.to_us clock out.latency_cycles in
  Alcotest.(check bool) (Printf.sprintf "baseline %.0f us in [150, 1200]" us) true
    (us > 150.0 && us < 1200.0)

let () =
  Alcotest.run "vjs"
    [
      ( "language",
        [
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "variables" `Quick test_variables;
          Alcotest.test_case "strings" `Quick test_strings;
          Alcotest.test_case "bitwise" `Quick test_bitwise;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "control flow" `Quick test_control_flow;
          Alcotest.test_case "functions" `Quick test_functions;
          Alcotest.test_case "closures" `Quick test_closures;
          Alcotest.test_case "arrays" `Quick test_arrays;
          Alcotest.test_case "objects" `Quick test_objects;
          Alcotest.test_case "array higher-order" `Quick test_array_higher_order;
          Alcotest.test_case "JSON" `Quick test_json;
          Alcotest.test_case "try/catch/finally" `Quick test_try_catch;
          Alcotest.test_case "uncaught throw" `Quick test_uncaught_throw_is_error;
          Alcotest.test_case "math builtins" `Quick test_math_builtins;
          Alcotest.test_case "truthiness" `Quick test_truthiness;
        ] );
      ( "engine",
        [
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "step budget" `Quick test_step_budget;
          Alcotest.test_case "native bindings" `Quick test_native_bindings;
          Alcotest.test_case "print/console" `Quick test_print_console;
          Alcotest.test_case "cost charging" `Quick test_engine_charges;
        ] );
      ( "workload",
        [
          Alcotest.test_case "baseline correct" `Quick test_workload_baseline_correct;
          Alcotest.test_case "baseline sizes" `Quick test_workload_baseline_sizes;
          Alcotest.test_case "virtine correct" `Quick test_workload_virtine_correct;
          Alcotest.test_case "snapshot faster" `Quick test_workload_snapshot_correct_and_faster;
          Alcotest.test_case "no-teardown faster" `Quick test_workload_nt_faster;
          Alcotest.test_case "baseline latency ballpark" `Quick
            test_workload_baseline_latency_ballpark;
        ] );
    ]
